//! `hw` — Heart Wall tracking (Fig. 3 row 4).
//!
//! Rodinia's Heart Wall tracks sample points of a mouse heart across a
//! sequence of ultrasound frames: within a frame all points are
//! independent; across frames each point depends on its own previous
//! position. We synthesize the frames (DESIGN.md §7 — detection cost
//! depends on the dependence structure and access pattern, not on real
//! pixels): the main task writes each frame's pixels, then creates one
//! future per (frame, point); task `(f, p)` gets the handle of
//! `(f-1, p)` — a single-touch chain per point — reads its previous
//! position, scans a window of frame `f`, and writes its new position.

use sfrd_core::{ShadowArray, Workload};
use sfrd_runtime::Cx;

/// Parameters for [`HwWorkload`].
#[derive(Debug, Clone, Copy)]
pub struct HwParams {
    /// Number of frames.
    pub frames: usize,
    /// Tracking points per frame.
    pub points: usize,
    /// Frame side length (pixels).
    pub side: usize,
    /// Search-window side around the previous position.
    pub window: usize,
    /// Number of template passes per window scan (Rodinia's per-point
    /// convolution stack; multiplies reads without adding writes).
    pub templates: usize,
}

impl HwParams {
    /// Small default for tests/CI.
    pub fn small() -> Self {
        Self {
            frames: 4,
            points: 24,
            side: 64,
            window: 8,
            templates: 2,
        }
    }

    /// Paper-shaped input (10 frames, Rodinia-like point count). Heavy!
    pub fn paper() -> Self {
        Self {
            frames: 10,
            points: 368,
            side: 512,
            window: 40,
            templates: 16,
        }
    }
}

/// The `hw` benchmark state.
pub struct HwWorkload {
    /// Frame pixels, `frames × side²`, written by the main task.
    pixels: ShadowArray<u64>,
    /// Point positions, `(frames+1) × points`, packed `y*side + x`.
    positions: ShadowArray<u64>,
    params: HwParams,
    seed: u64,
}

impl HwWorkload {
    /// Build with deterministic synthetic frames.
    pub fn new(params: HwParams, seed: u64) -> Self {
        assert!(params.window < params.side / 2);
        Self {
            pixels: ShadowArray::new(params.frames * params.side * params.side),
            positions: ShadowArray::new((params.frames + 1) * params.points),
            params,
            seed,
        }
    }

    #[inline]
    fn pixel_value(&self, f: usize, y: usize, x: usize) -> u64 {
        let v = (f as u64) << 40 | (y as u64) << 20 | x as u64;
        v.wrapping_mul(0x9e37_79b9_7f4a_7c15 ^ self.seed) >> 16
    }

    /// Track one point in frame `f` (frames are 1-based; row 0 of
    /// `positions` holds the initial placements).
    fn track<'s, C: Cx<'s>>(&self, ctx: &mut C, f: usize, p: usize) {
        let pts = self.params.points;
        let side = self.params.side;
        let w = self.params.window;
        let prev = self.positions.read(ctx, (f - 1) * pts + p);
        let (py, px) = ((prev / side as u64) as usize, (prev % side as u64) as usize);
        // Scan the window in frame f around (py, px); pick the arg-max of a
        // simple response function (stands in for Rodinia's convolutions).
        let mut best = (0u64, py, px);
        let y0 = py.saturating_sub(w / 2).min(side - w);
        let x0 = px.saturating_sub(w / 2).min(side - w);
        let base = (f - 1) * side * side;
        for t in 0..self.params.templates {
            for dy in 0..w {
                for dx in 0..w {
                    let (y, x) = (y0 + dy, x0 + dx);
                    let v = self.pixels.read(ctx, base + y * side + x);
                    let resp = v.rotate_left(t as u32) ^ (dy as u64) << 3 ^ dx as u64;
                    if resp > best.0 {
                        best = (resp, y, x);
                    }
                }
            }
        }
        self.positions
            .write(ctx, f * pts + p, (best.1 * side + best.2) as u64);
    }

    /// The input parameters.
    pub fn params(&self) -> &HwParams {
        &self.params
    }

    /// Uninstrumented serial reference: final positions of all points.
    pub fn expected(&self) -> Vec<u64> {
        let HwParams {
            frames,
            points,
            side,
            window: w,
            ..
        } = self.params;
        let mut pos: Vec<u64> = (0..points)
            .map(|p| ((side / 2) * side + (p * side) / points.max(1)) as u64)
            .collect();
        for f in 1..=frames {
            for p in pos.iter_mut() {
                let (py, px) = ((*p / side as u64) as usize, (*p % side as u64) as usize);
                let mut best = (0u64, py, px);
                let y0 = py.saturating_sub(w / 2).min(side - w);
                let x0 = px.saturating_sub(w / 2).min(side - w);
                for t in 0..self.params.templates {
                    for dy in 0..w {
                        for dx in 0..w {
                            let (y, x) = (y0 + dy, x0 + dx);
                            let v = self.pixel_value(f - 1, y, x);
                            let resp = v.rotate_left(t as u32) ^ (dy as u64) << 3 ^ dx as u64;
                            if resp > best.0 {
                                best = (resp, y, x);
                            }
                        }
                    }
                }
                *p = (best.1 * side + best.2) as u64;
            }
        }
        pos
    }

    /// Check final positions against the reference.
    pub fn verify(&self) -> bool {
        let HwParams { frames, points, .. } = self.params;
        let want = self.expected();
        (0..points).all(|p| self.positions.load(frames * points + p) == want[p])
    }
}

impl Workload for HwWorkload {
    fn run<'s, C: Cx<'s>>(&'s self, ctx: &mut C) {
        let HwParams {
            frames,
            points,
            side,
            ..
        } = self.params;
        // Initial placements (frame 0 row).
        for p in 0..points {
            let init = ((side / 2) * side + (p * side) / points.max(1)) as u64;
            self.positions.write(ctx, p, init);
        }
        // One single-touch future chain per point across frames.
        let mut prev: Vec<Option<C::Handle<()>>> = (0..points).map(|_| None).collect();
        for f in 1..=frames {
            // "Load" frame f: the main task writes its pixels.
            let base = (f - 1) * side * side;
            for y in 0..side {
                for x in 0..side {
                    self.pixels
                        .write(ctx, base + y * side + x, self.pixel_value(f - 1, y, x));
                }
            }
            for (p, slot) in prev.iter_mut().enumerate() {
                let upstream = slot.take();
                *slot = Some(ctx.create(move |c| {
                    if let Some(h) = upstream {
                        c.get(h);
                    }
                    self.track(c, f, p);
                }));
            }
        }
        // Join the last frame's trackers.
        for h in prev.into_iter().flatten() {
            ctx.get(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfrd_core::{drive, DetectorKind, DriveConfig, Mode};

    #[test]
    fn hw_matches_reference_all_detectors() {
        for kind in [
            DetectorKind::SfOrder,
            DetectorKind::FOrder,
            DetectorKind::MultiBags,
        ] {
            let w = HwWorkload::new(
                HwParams {
                    frames: 3,
                    points: 8,
                    side: 32,
                    window: 6,
                    templates: 2,
                },
                13,
            );
            let workers = if kind == DetectorKind::MultiBags {
                1
            } else {
                2
            };
            let out = drive(&w, DriveConfig::with(kind, Mode::Full, workers));
            assert!(w.verify(), "{kind:?}");
            assert_eq!(out.report.unwrap().total_races, 0, "{kind:?}");
        }
    }

    #[test]
    fn hw_future_count_is_frames_times_points() {
        let w = HwWorkload::new(
            HwParams {
                frames: 3,
                points: 8,
                side: 32,
                window: 6,
                templates: 2,
            },
            3,
        );
        let out = drive(&w, DriveConfig::with(DetectorKind::SfOrder, Mode::Reach, 2));
        assert_eq!(out.report.unwrap().counts.futures, 24);
    }
}
