//! Targeted structural stress for the reachability engines: deep ancestor
//! chains, wide sibling fan-outs, and the exact boundary cases of
//! Algorithm 1's three-way split.

use sfrd_reach::{FoReach, MbReach, SfReach};

/// A 100-deep create chain: every ancestor's pre-create strand precedes
/// every descendant (case 2 through a long cp chain); descendants stay
/// parallel to every post-create continuation.
#[test]
fn sf_deep_ancestor_chain() {
    let (eng, mut root) = SfReach::new();
    let mut creators = vec![root.pos()];
    let mut cur = eng.create(&mut root);
    let mut continuations = vec![root.pos()];
    let mut strands = Vec::new();
    for _ in 0..99 {
        creators.push(cur.pos());
        let next = eng.create(&mut cur);
        continuations.push(cur.pos());
        strands.push(cur);
        cur = next;
    }
    // The deepest strand sees all 100 creator positions as predecessors.
    for (depth, &c) in creators.iter().enumerate() {
        assert!(eng.precedes(c, &cur), "creator at depth {depth}");
    }
    // But no post-create continuation precedes it.
    for (depth, &k) in continuations.iter().enumerate() {
        assert!(!eng.precedes(k, &cur), "continuation at depth {depth}");
    }
    // And the deepest strand precedes nothing above it.
    let deepest = cur.pos();
    for s in &strands {
        assert!(!eng.precedes(deepest, s));
    }
}

/// The same chain on F-Order (hash-table route).
#[test]
fn fo_deep_ancestor_chain() {
    let (eng, mut root) = FoReach::new();
    let mut creators = vec![root.pos()];
    let mut cur = eng.create(&mut root);
    let mut continuations = vec![root.pos()];
    for _ in 0..99 {
        creators.push(cur.pos());
        let next = eng.create(&mut cur);
        continuations.push(cur.pos());
        cur = next;
    }
    for &c in &creators {
        assert!(eng.precedes(c, &cur));
    }
    for &k in &continuations {
        assert!(!eng.precedes(k, &cur));
    }
}

/// 200 sibling futures, all gotten: gp accumulates them all; the strand
/// after the last get succeeds every future, while ungotten ones stay
/// parallel.
#[test]
fn sf_wide_sibling_accumulation() {
    let (eng, mut root) = SfReach::new();
    let mut done = Vec::new();
    let mut escaped = Vec::new();
    for i in 0..200 {
        let mut f = eng.create(&mut root);
        eng.task_end(&mut f);
        if i % 4 == 0 {
            escaped.push(f); // never gotten
        } else {
            done.push(f);
        }
    }
    for f in &done {
        eng.get(&mut root, f);
    }
    for f in &done {
        assert!(eng.precedes(f.pos(), &root));
        assert!(root.gp().contains(f.future()));
    }
    for f in &escaped {
        assert!(
            !eng.precedes(f.pos(), &root),
            "escaping future must stay parallel"
        );
        assert!(!root.gp().contains(f.future()));
    }
    assert_eq!(eng.future_count(), 201);
}

/// MultiBags under a serial spawn tree 12 levels deep: path-compressed
/// union-find keeps answering after thousands of bag melds.
#[test]
fn mb_deep_spawn_tree() {
    fn go(
        eng: &mut MbReach,
        parent: &mut sfrd_reach::MbStrand,
        depth: u32,
        positions: &mut Vec<sfrd_reach::MbPos>,
    ) {
        if depth == 0 {
            positions.push(parent.pos());
            return;
        }
        for _ in 0..2 {
            let mut c = eng.spawn(parent);
            go(eng, &mut c, depth - 1, positions);
            eng.task_end(&mut c);
            eng.task_return(parent, &c);
        }
        eng.sync(parent);
    }
    let (mut eng, mut root) = MbReach::new();
    let mut positions = Vec::new();
    go(&mut eng, &mut root, 12, &mut positions);
    assert_eq!(positions.len(), 4096);
    // After the final sync, every leaf precedes the root strand.
    for (i, &p) in positions.iter().enumerate() {
        assert!(eng.precedes(p, &root), "leaf {i}");
    }
}

/// Algorithm 1 boundary: u's future equals v's — gp is never consulted
/// even when it happens to contain unrelated futures.
#[test]
fn same_future_route_is_psp_only() {
    let (eng, mut root) = SfReach::new();
    // Pump gp with a gotten future.
    let mut f = eng.create(&mut root);
    eng.task_end(&mut f);
    eng.get(&mut root, &f);
    // Fork-join inside the root future: parallel branches.
    let a = eng.spawn(&mut root);
    let a_pos = a.pos();
    let cont = root.pos();
    assert!(
        !eng.precedes(a_pos, &root),
        "sibling branch is parallel (same future)"
    );
    eng.sync(&mut root, [&a]);
    assert!(eng.precedes(a_pos, &root), "sync serializes it");
    assert!(
        eng.precedes(cont, &root),
        "old continuation is a serial ancestor"
    );
    // Antisymmetry across futures: the root's current strand does not
    // precede the long-finished future f.
    assert!(!eng.precedes(root.pos(), &f));
}
