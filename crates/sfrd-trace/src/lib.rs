//! # sfrd-trace — versioned binary strand-event journals
//!
//! The unified strand-event pipeline made every detector event-shaped: a
//! run *is* its stream of `spawn`/`create`/`sync`/`get`/task-end events
//! plus per-position access batches. This crate serializes that stream to
//! a compact, versioned binary **journal**, splitting *record* from
//! *detect*:
//!
//! * [`JournalHooks`] — a [`TaskHooks`](sfrd_runtime::TaskHooks)
//!   implementation (used under [`Batched`](sfrd_runtime::Batched), so the
//!   recorded access stream is exactly what a live batched detector would
//!   have seen) that appends every event to a [`JournalWriter`];
//! * [`JournalReader`] — a streaming decoder over any `Read`;
//! * [`replay_journal`] — feeds a decoded stream into any `TaskHooks`
//!   sink, per-strand access batches and verdict caches included, so a
//!   fresh detector reproduces the recording run's verdicts (and, for
//!   sequentially recorded journals, its counters) exactly.
//!
//! ## Why replay is sound
//!
//! The recording hooks serialize events under one mutex at
//! hook-invocation time, so the journal is a *linearization* of the
//! recorded dag: a child's first event appears after its `Spawn`/`Create`,
//! a `Get` appears after the future's final strand was published, and the
//! per-strand event order is program order. Replaying that sequence
//! serially therefore executes the *same dag* under an adjacent legal
//! schedule — and determinacy races are a property of the dag, not the
//! schedule, so the racy-address verdict is identical (the same argument
//! that justifies the batch pipeline itself). MultiBags additionally
//! requires the serial depth-first event order (its SP-bags invariant), so
//! journals destined for MultiBags replay must be *recorded* on the
//! sequential runtime — which also records the `TaskReturn` events it
//! needs.
//!
//! ## Format (version 1)
//!
//! Header: 8-byte magic `SFRDJRNL`, `u32` LE version, `u32` LE metadata
//! length, metadata (UTF-8). Then length-prefixed frames (`u32` LE payload
//! length; payload byte 0 is the frame kind): kind 1 carries a run of
//! varint-packed events, kind 2 is the explicit end-of-journal marker (a
//! journal without it is truncated). Access records pack as
//! delta-zigzag-varint addresses plus an is-write bitmap; see `DESIGN.md`
//! §12 for the full layout and the versioning rules.

#![warn(missing_docs)]

mod format;
mod reader;
mod replay;
mod varint;
mod writer;

pub use format::{
    is_end_frame, is_journal, JournalError, JOURNAL_MAGIC, JOURNAL_VERSION, MAX_FRAME_LEN,
};
pub use reader::{read_frame, read_header, DecodedFrame, EventDecoder, JEvent, JournalReader};
pub use replay::{replay_journal, ReplayStats, Replayer};
pub use writer::{JournalHooks, JournalWriter};
