//! # sfrd-runtime — task-parallel runtimes for SF-Order
//!
//! Two runtimes behind one programming model (the [`Cx`] context trait):
//!
//! * [`parallel::Runtime`] — a work-stealing pool (child-stealing,
//!   work-helping joins) standing in for the paper's extended Cilk-F
//!   runtime; detectors plug in as [`TaskHooks`];
//! * [`sequential::run_sequential`] — the serial elision (left-to-right
//!   depth-first), required by the MultiBags baseline and used as the
//!   deterministic reference execution in tests.
//!
//! Programs express fork-join parallelism with [`Cx::spawn`]/[`Cx::sync`]
//! and structured futures with [`Cx::create`]/[`Cx::get`]; handles are
//! single-touch by construction (`get` consumes the handle), and the
//! "no race on the handle" restriction holds because handles flow only
//! along dag edges (Rust ownership).
//!
//! ```
//! use sfrd_runtime::{Cx, NullHooks, Runtime};
//! use std::sync::Arc;
//!
//! fn fib<'s, C: Cx<'s>>(ctx: &mut C, n: u64) -> u64 {
//!     if n < 2 {
//!         return n;
//!     }
//!     let h = ctx.create(move |c| fib(c, n - 1));
//!     let b = fib(ctx, n - 2);
//!     ctx.get(h) + b
//! }
//!
//! let rt: Runtime<NullHooks> = Runtime::new(2);
//! assert_eq!(rt.run(std::sync::Arc::new(NullHooks), |ctx| fib(ctx, 10)), 55);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod chase_lev;
pub mod hooks;
pub mod injector;
#[cfg(sfrd_model)]
pub mod model;
pub mod parallel;
pub mod sequential;
pub mod sync;

pub use batch::{AccessBatch, BatchStats, BatchStrand, Batched, BatchedAccess, VerdictCache};
pub use hooks::{Cx, NullHooks, TaskHooks};
pub use parallel::{FutureHandle, ParCtx, PoolStats, Runtime, SchedBackend};
pub use sequential::{run_sequential, SeqCtx, SeqHandle};

/// How to execute a program under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of workers (`P`); ignored when `sequential`.
    pub workers: usize,
    /// Serial elision instead of the work-stealing pool.
    pub sequential: bool,
}

impl RuntimeConfig {
    /// Parallel execution on `workers` workers.
    pub fn parallel(workers: usize) -> Self {
        Self {
            workers,
            sequential: false,
        }
    }

    /// Serial left-to-right depth-first execution.
    pub fn serial() -> Self {
        Self {
            workers: 1,
            sequential: true,
        }
    }
}
