//! Minimal hand-rolled JSON emission and parsing for the machine-tracked
//! perf trajectory (`BENCH_fig4.json`). The container vendors no serde,
//! and the bench schema is a dozen fields — a tiny value tree, an escaper
//! and a recursive-descent parser (for the `bench_gate` drift check) are
//! all that is needed.

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Unsigned integer (all our counters).
    U64(u64),
    /// Float, rendered with enough precision for wall times.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder.
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Parse a JSON document. Accepts exactly what [`render`](Self::render)
    /// emits (plus arbitrary standard JSON); rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as f64 (covers both integer and float nodes).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned-integer payload, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Add a field to an object (panics on non-objects).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Render with two-space indentation and a trailing newline — stable
    /// output so the committed snapshot diffs cleanly across PRs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // 6 significant decimals: microsecond resolution on
                    // wall times, compact on ratios.
                    let s = format!("{x:.6}");
                    let s = s.trim_end_matches('0').trim_end_matches('.');
                    out.push_str(if s.is_empty() { "0" } else { s });
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogates never appear in our own output; map
                        // them to U+FFFD rather than pairing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched: find
                // the char boundary via the str view.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Json::U64(n));
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::U64(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::U64(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::F64(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj()
            .field("schema", 1u64)
            .field("name", "fig4")
            .field("ok", true)
            .field("wall_s", 0.123456789f64)
            .field("rows", vec![Json::obj().field("bench", "sw"), Json::Null]);
        let s = j.render();
        assert!(s.contains("\"schema\": 1"));
        assert!(s.contains("\"wall_s\": 0.123457"));
        assert!(s.contains("\"bench\": \"sw\""));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn trims_float_zeros() {
        assert_eq!(Json::F64(2.5).render(), "2.5\n");
        assert_eq!(Json::F64(3.0).render(), "3\n");
    }

    #[test]
    fn parse_round_trips_render() {
        let j = Json::obj()
            .field("schema", 2u64)
            .field("label", "kernels auto")
            .field("mean_s", 0.03125f64)
            .field("rows", vec![Json::obj().field("w", 4u64), Json::Null])
            .field("esc", "a\"b\\c\nd");
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("label").and_then(Json::as_str),
            Some("kernels auto")
        );
        assert_eq!(parsed.get("mean_s").and_then(Json::as_f64), Some(0.03125));
        let rows = parsed.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("w").and_then(Json::as_u64), Some(4));
        assert!(matches!(rows[1], Json::Null));
        assert_eq!(parsed.get("esc").and_then(Json::as_str), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": 1} x").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_negative_and_float_numbers() {
        let j = Json::parse("[-1.5, 2, 1e3]").unwrap();
        let a = j.as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(-1.5));
        assert_eq!(a[1].as_u64(), Some(2));
        assert_eq!(a[2].as_f64(), Some(1000.0));
    }
}
