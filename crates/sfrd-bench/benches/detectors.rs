//! Whole-run detector benchmarks: each Fig. 4 cell as a Criterion
//! measurement on small inputs (statistical backing for the fig4_times
//! wall-clock table). One group per benchmark; one function per
//! detector × config.

use criterion::{criterion_group, criterion_main, Criterion};
use sfrd_core::{drive, DetectorKind, DriveConfig, Mode};
use sfrd_workloads::{make_bench, Scale};
use std::hint::black_box;

fn bench_workload(c: &mut Criterion, name: &'static str) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    let configs: Vec<(&str, DriveConfig)> = vec![
        ("base", DriveConfig::base(1)),
        (
            "multibags_reach",
            DriveConfig::with(DetectorKind::MultiBags, Mode::Reach, 1),
        ),
        (
            "multibags_full",
            DriveConfig::with(DetectorKind::MultiBags, Mode::Full, 1),
        ),
        (
            "forder_reach",
            DriveConfig::with(DetectorKind::FOrder, Mode::Reach, 1),
        ),
        (
            "forder_full",
            DriveConfig::with(DetectorKind::FOrder, Mode::Full, 1),
        ),
        (
            "sforder_reach",
            DriveConfig::with(DetectorKind::SfOrder, Mode::Reach, 1),
        ),
        (
            "sforder_full",
            DriveConfig::with(DetectorKind::SfOrder, Mode::Full, 1),
        ),
    ];
    for (label, cfg) in configs {
        g.bench_function(label, |b| {
            b.iter(|| {
                let w = make_bench(name, Scale::Small, 1);
                black_box(drive(&w, cfg));
            })
        });
    }
    g.finish();
}

fn detectors(c: &mut Criterion) {
    for name in ["mm", "sort", "sw", "hw", "ferret"] {
        bench_workload(c, name);
    }
}

criterion_group!(benches, detectors);
criterion_main!(benches);
