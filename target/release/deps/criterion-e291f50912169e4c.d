/root/repo/target/release/deps/criterion-e291f50912169e4c.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e291f50912169e4c.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
