//! The three on-the-fly determinacy race detectors, as
//! [`TaskHooks`](sfrd_runtime::TaskHooks) (via the unified [`EventSink`]).
//!
//! Each detector couples one reachability engine (`sfrd-reach`) with the
//! access history (`sfrd-shadow`) and implements the standard on-the-fly
//! protocol (§1, §3):
//!
//! * **read `l` by `v`**: look up `l`'s last writer `w`; if `w ⊀ v`, report
//!   a race; retain `v` as a reader of `l`;
//! * **write `l` by `v`**: check the last writer and every retained reader
//!   against `v`; then `v` becomes the writer and the readers are dropped.
//!
//! The protocol itself lives once, in [`EventSink`](crate::events); this
//! module provides the engine adapters — [`SfEngine`], [`FoEngine`],
//! [`MbEngine`] — and the detector aliases over them.
//!
//! Configurations (Fig. 4): `Reach` maintains only the reachability
//! structures (no access-history work at all); `Full` does everything.
//!
//! A detector instance drives exactly one execution (`root()` hands out the
//! root strand once) but its report can be read afterwards.

use parking_lot::Mutex;

use sfrd_om::OmBackend;
use sfrd_reach::{
    FoReach, FoStrand, KernelKind, MbPos, MbReach, MbStrand, SetRepr, SetStatsSnapshot, SfPos,
    SfReach, SfStrand, StrandPos,
};
use sfrd_shadow::{ReaderPolicy, ShadowBackend};

use crate::config::EngineConfig;
use crate::events::{EventSink, ReachEngine};

/// Detector configuration of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Reachability maintenance only (no access checks).
    Reach,
    /// Full race detection.
    Full,
}

/// Strip a detector's memory instrumentation at compile time.
///
/// The paper's `reach` configuration is a separate *build* with no access
/// instrumentation emitted at all; a runtime `if` per access would charge
/// it ~2 ns x 10^8 accesses it should not pay. Wrapping a detector in
/// `ReachOnly` replaces `on_read`/`on_write` with empty inlined bodies —
/// monomorphization deletes the access path exactly like the paper's
/// separate compilation does — while every parallel-construct hook still
/// reaches the inner detector.
pub struct ReachOnly<H>(pub H);

impl<H: sfrd_runtime::TaskHooks> sfrd_runtime::TaskHooks for ReachOnly<H> {
    type Strand = H::Strand;

    fn root(&self) -> Self::Strand {
        self.0.root()
    }
    fn on_spawn(&self, p: &mut Self::Strand) -> Self::Strand {
        self.0.on_spawn(p)
    }
    fn on_create(&self, p: &mut Self::Strand) -> Self::Strand {
        self.0.on_create(p)
    }
    fn on_sync(&self, s: &mut Self::Strand, children: Vec<Self::Strand>) {
        self.0.on_sync(s, children)
    }
    fn on_get(&self, s: &mut Self::Strand, done: &Self::Strand) {
        self.0.on_get(s, done)
    }
    fn on_task_end(&self, s: &mut Self::Strand) {
        self.0.on_task_end(s)
    }
    fn on_task_return(&self, p: &mut Self::Strand, c: &mut Self::Strand) {
        self.0.on_task_return(p, c)
    }
    #[inline(always)]
    fn on_read(&self, _: &mut Self::Strand, _: u64) {}
    #[inline(always)]
    fn on_write(&self, _: &mut Self::Strand, _: u64) {}
    fn on_access_batch(&self, _: &mut Self::Strand, batch: &mut sfrd_runtime::AccessBatch) {
        batch.discard();
    }
}

// ================================================================ SF-Order

/// SF-Order reachability as a pluggable engine.
pub struct SfEngine(pub(crate) SfReach);

impl SfEngine {
    fn new(repr: SetRepr, kernels: KernelKind, om_backend: OmBackend) -> (Self, SfStrand) {
        let (reach, root) = SfReach::with_config_om(repr, kernels, om_backend);
        (Self(reach), root)
    }
}

impl ReachEngine for SfEngine {
    type Strand = SfStrand;
    type Pos = SfPos;

    fn spawn(&self, parent: &mut SfStrand) -> SfStrand {
        self.0.spawn(parent)
    }
    fn create(&self, parent: &mut SfStrand) -> SfStrand {
        self.0.create(parent)
    }
    fn sync(&self, s: &mut SfStrand, children: &[SfStrand]) {
        self.0.sync(s, children.iter());
    }
    fn get(&self, s: &mut SfStrand, done: &SfStrand) {
        self.0.get(s, done);
    }
    fn task_end(&self, s: &mut SfStrand) {
        self.0.task_end(s);
    }
    fn pos(s: &SfStrand) -> SfPos {
        s.pos()
    }
    fn future_id(s: &SfStrand) -> u32 {
        s.future().0
    }
    fn precedes(&self, a: SfPos, s: &SfStrand) -> bool {
        self.0.precedes(a, s)
    }
    fn eng_less(&self, a: &SfPos, b: &SfPos) -> bool {
        self.0.sp_order().eng_precedes(a.sp, b.sp)
    }
    fn heb_less(&self, a: &SfPos, b: &SfPos) -> bool {
        self.0.sp_order().heb_precedes(a.sp, b.sp)
    }
    fn pos_precedes(&self, a: &SfPos, b: &SfPos) -> bool {
        self.0.sp_order().precedes_eq(a.sp, b.sp)
    }
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes()
    }
    fn merges(&self) -> u64 {
        self.0.set_stats().snapshot().2
    }
    fn set_stats_snapshot(&self) -> SetStatsSnapshot {
        self.0.set_stats().full_snapshot()
    }
    fn om_stats(&self) -> sfrd_om::OmStats {
        self.0.sp_order().om_stats()
    }
    fn arena_slabs(&self) -> u64 {
        self.0.arena_slabs()
    }
}

/// The paper's detector: SF-Order reachability + access history.
pub type SfDetector = EventSink<SfEngine>;

impl SfDetector {
    /// Build a one-shot detector from an [`EngineConfig`]. SF-Order honors
    /// every field: `policy` selects the §3.5 bounded reader set or the
    /// ship-it-all variant the paper's implementation uses.
    pub fn from_config(cfg: &EngineConfig) -> Self {
        EventSink::build(
            SfEngine::new(cfg.set_repr, cfg.kernels, cfg.om_backend),
            cfg.mode,
            cfg.policy,
            cfg.shadow,
        )
    }

    /// Build a one-shot detector with default backends.
    pub fn new(mode: Mode, policy: ReaderPolicy) -> Self {
        Self::from_config(&EngineConfig::new(mode).policy(policy))
    }

    /// [`new`](Self::new) with an explicit shadow-memory backend.
    #[deprecated(
        since = "0.1.0",
        note = "use `SfDetector::from_config(&EngineConfig)` — positional backend \
                parameters no longer grow"
    )]
    pub fn with_backend(mode: Mode, policy: ReaderPolicy, backend: ShadowBackend) -> Self {
        Self::from_config(&EngineConfig::new(mode).policy(policy).shadow(backend))
    }

    /// Fully explicit positional constructor.
    #[deprecated(
        since = "0.1.0",
        note = "use `SfDetector::from_config(&EngineConfig)` — positional backend \
                parameters no longer grow"
    )]
    pub fn with_config(
        mode: Mode,
        policy: ReaderPolicy,
        backend: ShadowBackend,
        set_repr: SetRepr,
        kernels: KernelKind,
    ) -> Self {
        Self::from_config(
            &EngineConfig::new(mode)
                .policy(policy)
                .shadow(backend)
                .set_repr(set_repr)
                .kernels(kernels),
        )
    }

    /// Reachability engine (diagnostics).
    pub fn reach(&self) -> &SfReach {
        &self.engine.0
    }
}

// ================================================================= F-Order

/// F-Order reachability as a pluggable engine.
pub struct FoEngine(pub(crate) FoReach);

impl FoEngine {
    fn new(om_backend: OmBackend) -> (Self, FoStrand) {
        let (reach, root) = FoReach::with_backend(om_backend);
        (Self(reach), root)
    }
}

impl ReachEngine for FoEngine {
    type Strand = FoStrand;
    type Pos = StrandPos;

    fn spawn(&self, parent: &mut FoStrand) -> FoStrand {
        self.0.spawn(parent)
    }
    fn create(&self, parent: &mut FoStrand) -> FoStrand {
        self.0.create(parent)
    }
    fn sync(&self, s: &mut FoStrand, children: &[FoStrand]) {
        self.0.sync(s, children.iter());
    }
    fn get(&self, s: &mut FoStrand, done: &FoStrand) {
        self.0.get(s, done);
    }
    fn task_end(&self, s: &mut FoStrand) {
        self.0.task_end(s);
    }
    fn pos(s: &FoStrand) -> StrandPos {
        s.pos()
    }
    fn future_id(s: &FoStrand) -> u32 {
        s.future().0
    }
    fn precedes(&self, a: StrandPos, s: &FoStrand) -> bool {
        self.0.precedes(a, s)
    }
    // F-Order cannot bound readers: the LR comparators stay at the
    // constant-false defaults (policy is always `All`).
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes()
    }
    fn merges(&self) -> u64 {
        self.0.set_stats().snapshot().2
    }
    fn set_stats_snapshot(&self) -> SetStatsSnapshot {
        self.0.set_stats().full_snapshot()
    }
    fn om_stats(&self) -> sfrd_om::OmStats {
        self.0.sp_order().om_stats()
    }
    fn arena_slabs(&self) -> u64 {
        self.0.arena_slabs()
    }
}

/// The general-futures baseline detector: F-Order reachability + all-reader
/// access history.
pub type FoDetector = EventSink<FoEngine>;

impl FoDetector {
    /// Build a one-shot detector from an [`EngineConfig`]. F-Order cannot
    /// bound readers (the policy is always [`ReaderPolicy::All`]) and has
    /// no future sets on its hot path, so only `mode` and `shadow` apply.
    pub fn from_config(cfg: &EngineConfig) -> Self {
        EventSink::build(
            FoEngine::new(cfg.om_backend),
            cfg.mode,
            ReaderPolicy::All,
            cfg.shadow,
        )
    }

    /// Build a one-shot detector with default backends.
    pub fn new(mode: Mode) -> Self {
        Self::from_config(&EngineConfig::new(mode))
    }

    /// [`new`](Self::new) with an explicit shadow-memory backend.
    #[deprecated(
        since = "0.1.0",
        note = "use `FoDetector::from_config(&EngineConfig)` — positional backend \
                parameters no longer grow"
    )]
    pub fn with_backend(mode: Mode, backend: ShadowBackend) -> Self {
        Self::from_config(&EngineConfig::new(mode).shadow(backend))
    }

    /// Reachability engine (diagnostics).
    pub fn reach(&self) -> &FoReach {
        &self.engine.0
    }
}

// =============================================================== MultiBags

/// MultiBags (SP-bags union-find) reachability as a pluggable engine.
/// Must run under the sequential runtime (`run_sequential`); the engine is
/// behind a mutex only to satisfy the `&self` interface — it is never
/// contended.
pub struct MbEngine(pub(crate) Mutex<MbReach>);

impl MbEngine {
    fn new(repr: SetRepr, kernels: KernelKind) -> (Self, MbStrand) {
        let (reach, root) = MbReach::with_config(repr, kernels);
        (Self(Mutex::new(reach)), root)
    }
}

impl ReachEngine for MbEngine {
    type Strand = MbStrand;
    type Pos = MbPos;

    fn spawn(&self, parent: &mut MbStrand) -> MbStrand {
        self.0.lock().spawn(parent)
    }
    fn create(&self, parent: &mut MbStrand) -> MbStrand {
        self.0.lock().create(parent)
    }
    fn sync(&self, s: &mut MbStrand, children: &[MbStrand]) {
        let mut reach = self.0.lock();
        for c in children {
            reach.absorb_gp(s, c.gp());
        }
        reach.sync(s);
    }
    fn get(&self, s: &mut MbStrand, done: &MbStrand) {
        self.0.lock().get(s, done);
    }
    fn task_end(&self, s: &mut MbStrand) {
        self.0.lock().task_end(s);
    }
    fn task_return(&self, parent: &mut MbStrand, child: &mut MbStrand) {
        self.0.lock().task_return(parent, child);
    }
    fn pos(s: &MbStrand) -> MbPos {
        s.pos()
    }
    fn future_id(s: &MbStrand) -> u32 {
        s.future().0
    }
    fn precedes(&self, a: MbPos, s: &MbStrand) -> bool {
        self.0.lock().precedes(a, s)
    }
    fn heap_bytes(&self) -> usize {
        self.0.lock().heap_bytes()
    }
    fn merges(&self) -> u64 {
        self.0.lock().set_stats().snapshot().2
    }
    fn set_stats_snapshot(&self) -> SetStatsSnapshot {
        self.0.lock().set_stats().full_snapshot()
    }
}

/// The sequential baseline detector: SP-bags union-find reachability.
pub type MbDetector = EventSink<MbEngine>;

impl MbDetector {
    /// Build a one-shot detector from an [`EngineConfig`]. MultiBags keeps
    /// all readers (the policy field is ignored) but honors the shadow
    /// backend, the set representation, and the kernel dispatch policy.
    pub fn from_config(cfg: &EngineConfig) -> Self {
        EventSink::build(
            MbEngine::new(cfg.set_repr, cfg.kernels),
            cfg.mode,
            ReaderPolicy::All,
            cfg.shadow,
        )
    }

    /// Build a one-shot detector with default backends.
    pub fn new(mode: Mode) -> Self {
        Self::from_config(&EngineConfig::new(mode))
    }

    /// [`new`](Self::new) with an explicit shadow-memory backend.
    #[deprecated(
        since = "0.1.0",
        note = "use `MbDetector::from_config(&EngineConfig)` — positional backend \
                parameters no longer grow"
    )]
    pub fn with_backend(mode: Mode, backend: ShadowBackend) -> Self {
        Self::from_config(&EngineConfig::new(mode).shadow(backend))
    }

    /// Fully explicit positional constructor.
    #[deprecated(
        since = "0.1.0",
        note = "use `MbDetector::from_config(&EngineConfig)` — positional backend \
                parameters no longer grow"
    )]
    pub fn with_config(
        mode: Mode,
        backend: ShadowBackend,
        set_repr: SetRepr,
        kernels: KernelKind,
    ) -> Self {
        Self::from_config(
            &EngineConfig::new(mode)
                .shadow(backend)
                .set_repr(set_repr)
                .kernels(kernels),
        )
    }
}
