/root/repo/target/release/deps/trace_tool-9d92506028926d76.d: crates/sfrd-bench/src/bin/trace_tool.rs Cargo.toml

/root/repo/target/release/deps/libtrace_tool-9d92506028926d76.rmeta: crates/sfrd-bench/src/bin/trace_tool.rs Cargo.toml

crates/sfrd-bench/src/bin/trace_tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
