/root/repo/target/release/deps/k_scaling-afde5d988b7654af.d: crates/sfrd-bench/src/bin/k_scaling.rs Cargo.toml

/root/repo/target/release/deps/libk_scaling-afde5d988b7654af.rmeta: crates/sfrd-bench/src/bin/k_scaling.rs Cargo.toml

crates/sfrd-bench/src/bin/k_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
