/root/repo/target/release/examples/race_debugging-ada256c4605b776e.d: examples/race_debugging.rs Cargo.toml

/root/repo/target/release/examples/librace_debugging-ada256c4605b776e.rmeta: examples/race_debugging.rs Cargo.toml

examples/race_debugging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
