/root/repo/target/release/deps/trace_integration-e269b76ec0628ad9.d: tests/trace_integration.rs Cargo.toml

/root/repo/target/release/deps/libtrace_integration-e269b76ec0628ad9.rmeta: tests/trace_integration.rs Cargo.toml

tests/trace_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
