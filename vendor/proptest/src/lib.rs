//! Offline stand-in for `proptest` (see vendor/README.md).
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` line and
//! single-binding `name in strategy` test signatures, [`any`],
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the generated value via the
//!   panic message instead of a minimized counterexample;
//! * **deterministic seeding** — cases derive from a fixed seed mixed with
//!   the case index, so failures reproduce exactly without a
//!   `proptest-regressions` file (existing regression files are ignored).

use rand::prelude::*;

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Unused compatibility field (kept so `..Default::default()` works).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::*;
    use std::ops::Range;

    /// Strategy for a `Vec` with length drawn from `range`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec<S::Value>` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run one property test: `cfg.cases` random cases of `strategy` through
/// `body`. Called by the [`proptest!`] expansion; panics (with the case
/// index and debug form of the input) on the first failing case.
pub fn run_property<S, F>(test_name: &str, cfg: &ProptestConfig, strategy: &S, mut body: F)
where
    S: Strategy,
    S::Value: std::fmt::Debug + Clone,
    F: FnMut(S::Value),
{
    // Deterministic per-test seed: stable across runs and platforms.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cfg.cases {
        let value = strategy.generate(&mut rng);
        let kept = value.clone();
        if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value))) {
            eprintln!("proptest stand-in: {test_name} failed at case {case} with input: {kept:?}");
            std::panic::resume_unwind(p);
        }
    }
}

/// Property-test macro: generates `#[test]` functions that run the body
/// over many generated inputs.
#[macro_export]
macro_rules! proptest {
    // With a config line. The `#[test]` attribute at each call site is
    // captured by the `$meta` repetition and re-emitted verbatim.
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($pat:ident in $strategy:expr) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let strategy = $strategy;
                $crate::run_property(stringify!($name), &cfg, &strategy, |$pat| $body);
            }
        )*
    };
    // Without a config line.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($pat:ident in $strategy:expr) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($pat in $strategy) $body
            )*
        }
    };
}

/// `assert!` under a property (no early-return semantics in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The usual import bundle.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(any::<u16>(), 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
        }

        #[test]
        fn u64_roundtrip(x in any::<u64>()) {
            prop_assert_eq!(x, u64::from_le_bytes(x.to_le_bytes()));
        }
    }
}
