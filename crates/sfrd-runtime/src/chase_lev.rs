//! Chase-Lev dynamic circular work-stealing deque.
//!
//! The classic algorithm (Chase & Lev, SPAA '05) with the C11 memory
//! orderings of Lê, Pop, Cohen & Petri (PPoPP '13): the owner pushes and
//! pops at `bottom` fence-free except on the last-element race, where owner
//! and thieves arbitrate with a sequentially-consistent CAS on `top`;
//! thieves take from the `top` (FIFO) end. All atomics go through the
//! [`crate::sync`] facade, so the same code is driven through thousands of
//! interleavings by the `cfg(sfrd_model)` model checker (see
//! `tests/model_deque.rs`), checking the WorkStealing.tla invariants: no
//! lost task (W1), no double execution (W2), LIFO-local/FIFO-steal (W3),
//! and bounded stealing (W6 — a thief's CAS fails only when another thread
//! made progress).
//!
//! # Buffer reclamation
//!
//! When the owner grows the buffer it cannot free the old one immediately: a
//! thief may hold a pointer into it between loading `buf` and reading the
//! slot. Instead of a full epoch GC we use a quiescence counter: thieves
//! announce themselves in `thieves` (fetch_add SeqCst) *before* loading the
//! buffer pointer and retreat after the CAS; the owner retires old buffers
//! to a local list and frees them only after `fence(SeqCst); thieves == 0`.
//! The SeqCst pairing is a Dekker-style handshake: either the thief's
//! announcement is visible to the owner (buffer not freed), or the owner's
//! `buf` store is visible to the thief (it reads the new buffer). Retired
//! buffers are owner-private, so the list needs no synchronization; all are
//! freed on drop.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::Arc;

use crate::sync::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// A CAS was lost to a concurrent pop/steal; retrying may succeed.
    Retry,
}

impl<T> Steal<T> {
    /// Stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

struct Buffer<T> {
    cap: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::into_raw(Box::new(Buffer { cap, slots }))
    }

    #[inline]
    unsafe fn slot(&self, i: isize) -> *mut MaybeUninit<T> {
        self.slots[(i as usize) & (self.cap - 1)].get()
    }

    #[inline]
    unsafe fn write(&self, i: isize, v: MaybeUninit<T>) {
        self.slot(i).write(v);
    }

    #[inline]
    unsafe fn read(&self, i: isize) -> MaybeUninit<T> {
        self.slot(i).read()
    }
}

struct Inner<T> {
    bottom: AtomicIsize,
    top: AtomicIsize,
    buf: AtomicPtr<Buffer<T>>,
    /// Thief presence counter for quiescence-based buffer reclamation.
    thieves: AtomicUsize,
    /// Retired buffers; owner-only (the single `Worker`), hence UnsafeCell.
    retired: UnsafeCell<Vec<*mut Buffer<T>>>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner at this point; plain loads suffice.
        let b = *self.bottom.get_mut();
        let t = *self.top.get_mut();
        let buf = *self.buf.get_mut();
        unsafe {
            for i in t..b {
                drop((*buf).read(i).assume_init());
            }
            drop(Box::from_raw(buf));
            for p in (*self.retired.get()).drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

/// The owner end of a Chase-Lev deque: LIFO push/pop, not `Sync`.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Owner methods assume a single caller thread; suppress `Sync`.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

unsafe impl<T: Send> Send for Worker<T> {}

/// A thief's handle to some worker's deque: FIFO steals, clone freely.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

const MIN_CAP: usize = 32;

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Worker<T> {
    /// New empty deque with the default initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAP)
    }

    /// New empty deque whose buffer starts at `cap` (rounded up to a power
    /// of two) slots.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(2);
        Self {
            inner: Arc::new(Inner {
                bottom: AtomicIsize::new(0),
                top: AtomicIsize::new(0),
                buf: AtomicPtr::new(Buffer::alloc(cap)),
                thieves: AtomicUsize::new(0),
                retired: UnsafeCell::new(Vec::new()),
            }),
            _not_sync: PhantomData,
        }
    }

    /// A stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of queued tasks (racy snapshot).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Is the deque (racily) empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push onto the owner (hot) end. Never blocks; grows the buffer when
    /// full. The `Release` store on `bottom` publishes the slot write to
    /// thieves (paired with their `Acquire` load of `bottom`).
    pub fn push(&self, v: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buf.load(Ordering::Relaxed);
        unsafe {
            if b - t >= (*buf).cap as isize {
                buf = self.grow(b, t);
            }
            (*buf).write(b, MaybeUninit::new(v));
        }
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pop from the owner (hot) end, LIFO. Fence-free except for the single
    /// SeqCst fence arbitrating the last-element race with thieves, plus the
    /// SeqCst CAS on `top` when exactly one element remains.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buf.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // Dekker: my bottom decrement vs a thief's top increment. After this
        // fence, either the thief sees the decrement (and backs off the last
        // element) or I see its top increment (and concede via the CAS).
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty. The slot read is safe: thieves never touch index b
            // while top <= b, and the CAS below arbitrates the t == b case.
            let v = unsafe { (*buf).read(b) };
            if t == b {
                // Last element: race a pretending thief by advancing top.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(unsafe { v.assume_init() })
                } else {
                    // Lost to a thief; it owns the value. `v` is a
                    // MaybeUninit copy and is dropped without running
                    // T's destructor, so no double drop.
                    None
                }
            } else {
                Some(unsafe { v.assume_init() })
            }
        } else {
            // Empty; restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Double the buffer, copying live slots `t..b`; retire the old buffer
    /// and opportunistically free retired buffers once no thief is present.
    unsafe fn grow(&self, b: isize, t: isize) -> *mut Buffer<T> {
        let inner = &*self.inner;
        let old = inner.buf.load(Ordering::Relaxed);
        let new = Buffer::alloc((*old).cap * 2);
        for i in t..b {
            (*new).write(i, (*old).read(i));
        }
        inner.buf.store(new, Ordering::Release);
        (*inner.retired.get()).push(old);
        self.reclaim_retired();
        new
    }

    /// Free retired buffers if no thief is inside the read window.
    ///
    /// Dekker handshake with `Stealer::steal`: the thief does
    /// `thieves.fetch_add (SeqCst); fence(SeqCst); load buf`; we do
    /// `buf.store; fence(SeqCst); load thieves`. If we read `thieves == 0`,
    /// every concurrent thief's subsequent `buf` load sees the new buffer,
    /// so nothing can still reference a retired one.
    unsafe fn reclaim_retired(&self) {
        let inner = &*self.inner;
        fence(Ordering::SeqCst);
        if inner.thieves.load(Ordering::SeqCst) == 0 {
            for p in (*inner.retired.get()).drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

impl<T> Stealer<T> {
    /// Number of queued tasks (racy snapshot).
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Relaxed);
        let b = self.inner.bottom.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Is the deque (racily) empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Steal from the cold (FIFO) end. `Retry` means the CAS on `top` was
    /// lost to the owner's last-element pop or another thief — i.e. someone
    /// else made progress (the W6 bounded-stealing argument).
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        // Dekker vs the owner's pop: order my top load before my bottom
        // load so an owner taking the last element is observed.
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Announce before touching the buffer (reclamation handshake).
        inner.thieves.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let buf = inner.buf.load(Ordering::Acquire);
        // Speculative read: only valid to *use* if the CAS wins; a lost CAS
        // discards the MaybeUninit copy without dropping T.
        let v = unsafe { (*buf).read(t) };
        let won = inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        inner.thieves.fetch_sub(1, Ordering::SeqCst);
        if won {
            Steal::Success(unsafe { v.assume_init() })
        } else {
            Steal::Retry
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let w = Worker::new();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let w = Worker::with_capacity(2);
        for i in 0..1000 {
            w.push(i);
        }
        assert_eq!(w.len(), 1000);
        for i in (0..1000).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn drop_releases_queued_items() {
        let w = Worker::new();
        for i in 0..100 {
            w.push(Arc::new(i));
        }
        let probe = Arc::new(0usize);
        w.push(Arc::clone(&probe));
        drop(w);
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn threaded_exactly_once() {
        const N: u64 = 1 << 14;
        const THIEVES: usize = 3;
        let w = Worker::new();
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = w.stealer();
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    let mut count = 0u64;
                    loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                sum += v;
                                count += 1;
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(std::sync::atomic::Ordering::Acquire) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    (sum, count)
                })
            })
            .collect();
        let mut sum = 0u64;
        let mut count = 0u64;
        for i in 0..N {
            w.push(i);
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    sum += v;
                    count += 1;
                }
            }
        }
        while let Some(v) = w.pop() {
            sum += v;
            count += 1;
        }
        done.store(true, std::sync::atomic::Ordering::Release);
        loop {
            // Drain anything pushed-back nothing more is pushed; just let
            // thieves observe Empty and exit.
            if w.is_empty() {
                break;
            }
        }
        for h in handles {
            let (s, c) = h.join().unwrap();
            sum += s;
            count += c;
        }
        assert_eq!(count, N, "every pushed task taken exactly once");
        assert_eq!(sum, N * (N - 1) / 2, "task payloads intact");
    }
}
