//! # sfrd-dag — the computation-dag model for SF-Order
//!
//! Everything the SF-Order reproduction needs to *talk about* executions:
//!
//! * [`graph::Dag`] — explicit SF-dags and pseudo-SP-dags ([`Dag::psp`]),
//!   work/span accounting, and the structured-future validator;
//! * [`oracle`] — exact offline reachability and determinacy-race oracles
//!   (the ground truth for all property tests);
//! * [`recorder::Recorder`] — builds the executed dag on the fly from the
//!   same events the runtime hooks deliver;
//! * [`generator`] — random structured-future programs and a serial
//!   replayer over any [`generator::ProgramSink`].
//!
//! Terminology follows §2–3 of the paper: an **SF-dag** is a set of
//! series-parallel dags (one per future task) connected by non-SP `create`
//! and `get` edges; the **pseudo-SP-dag** `PSP(D)` converts creates to
//! spawns, drops gets, and joins each created future at the next sync of
//! the creating task (the task-end implicit sync if none follows).
//!
//! [`Dag::psp`]: graph::Dag::psp
//!
//! ```
//! use sfrd_dag::{Recorder, racy_addrs};
//!
//! // Record: root creates a future that writes x, then writes x itself
//! // without ever getting the future — a determinacy race.
//! let (rec, mut root) = Recorder::new();
//! let mut fut = rec.create(&mut root);
//! rec.access(&fut, 0x10, true);
//! rec.task_end(&mut fut);
//! rec.access(&root, 0x10, true);
//! rec.task_end(&mut root);
//!
//! let prog = rec.finish();
//! prog.validate().unwrap();                      // structured use
//! assert_eq!(prog.races().len(), 1);             // exact oracle
//! assert!(racy_addrs(&prog.dag, &prog.log).contains(&0x10));
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod graph;
pub mod ids;
pub mod oracle;
pub mod paths;
pub mod recorder;
pub mod trace;

pub use graph::{Dag, EdgeKind, NodeInfo, NodeKind, StructureError};
pub use ids::{FutureId, NodeId};
pub use oracle::{race_oracle, racy_addrs, Access, RacePair, ReachOracle};
pub use paths::{canonical_path, is_canonical};
pub use recorder::{RecStrand, RecordedProgram, Recorder};
pub use trace::{read_trace, write_trace, TraceError};
