/root/repo/target/release/deps/sfrd_workloads-2aeb9c8526cde173.d: crates/sfrd-workloads/src/lib.rs crates/sfrd-workloads/src/ferret.rs crates/sfrd-workloads/src/hw.rs crates/sfrd-workloads/src/lcs.rs crates/sfrd-workloads/src/mm.rs crates/sfrd-workloads/src/sort.rs crates/sfrd-workloads/src/sw.rs

/root/repo/target/release/deps/libsfrd_workloads-2aeb9c8526cde173.rmeta: crates/sfrd-workloads/src/lib.rs crates/sfrd-workloads/src/ferret.rs crates/sfrd-workloads/src/hw.rs crates/sfrd-workloads/src/lcs.rs crates/sfrd-workloads/src/mm.rs crates/sfrd-workloads/src/sort.rs crates/sfrd-workloads/src/sw.rs

crates/sfrd-workloads/src/lib.rs:
crates/sfrd-workloads/src/ferret.rs:
crates/sfrd-workloads/src/hw.rs:
crates/sfrd-workloads/src/lcs.rs:
crates/sfrd-workloads/src/mm.rs:
crates/sfrd-workloads/src/sort.rs:
crates/sfrd-workloads/src/sw.rs:
