/root/repo/target/release/deps/reach_query-6c98167a856e86cb.d: crates/sfrd-bench/benches/reach_query.rs Cargo.toml

/root/repo/target/release/deps/libreach_query-6c98167a856e86cb.rmeta: crates/sfrd-bench/benches/reach_query.rs Cargo.toml

crates/sfrd-bench/benches/reach_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
