//! The unified strand-event pipeline: one detector hot path for all
//! reachability engines.
//!
//! Before this module, `SfDetector`/`FoDetector`/`MbDetector` (and the
//! fork-join `WspDetector`) each carried a private copy of the on-the-fly
//! protocol — the same writer-check / reader-check / epoch-update sequence
//! four times over, differing only in how reachability questions are
//! answered. [`EventSink`] collapses them: a detector is now *one* struct
//! parameterized by a [`ReachEngine`], and the engines (`detectors.rs`,
//! `wsp.rs`) are thin adapters over `sfrd-reach`.
//!
//! The sink speaks both access protocols of `sfrd-runtime`:
//!
//! * **per-access** (`on_read`/`on_write`): one shadow access per call —
//!   a shard lock on the sharded backend, a lock-free slot section (or the
//!   zero-store read fast path) on the paged one;
//! * **per-batch** (`on_access_batch`, fed by
//!   [`Batched`](sfrd_runtime::Batched)): the buffered accesses — all
//!   issued at one dag position — replay through the backend's batch
//!   entry point (sorted shard views on the sharded backend, a page
//!   cursor on the paged one), and the strand's [`VerdictCache`] skips
//!   reachability queries against writers whose epoch has not changed
//!   (the seqlock-style fast path; see the `sfrd-shadow` crate docs for
//!   the soundness argument).
//!
//! Both paths funnel into the same [`check_read`](EventSink::on_read)/
//! write logic, so batching cannot change which `(addr, kind)` races
//! exist at a location — only how many times a repeated race is observed.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use sfrd_runtime::{AccessBatch, TaskHooks, VerdictCache};
use sfrd_shadow::{AccessHistory, LocEntry, PageCursor, ReaderPolicy, ShadowBackend};

use crate::detectors::Mode;
use crate::report::{Counters, MetricsSnapshot, RaceCollector, RaceKind, RaceReport};

/// A reachability engine pluggable into [`EventSink`]: answers "does
/// position `a` precede strand `s`" and maintains per-strand positions
/// across the parallel constructs. Adapters over `sfrd-reach` implement
/// this; the detection protocol itself lives in the sink.
pub trait ReachEngine: Send + Sync + 'static {
    /// Per-task engine state.
    type Strand: Send + 'static;
    /// Position stored in the access history.
    type Pos: Copy + PartialEq + Send + 'static;

    /// A task spawned a fork-join child.
    fn spawn(&self, parent: &mut Self::Strand) -> Self::Strand;
    /// A task created a future.
    fn create(&self, parent: &mut Self::Strand) -> Self::Strand;
    /// A sync joined the completed spawned children.
    fn sync(&self, s: &mut Self::Strand, children: &[Self::Strand]);
    /// A get consumed the future whose final strand is `done`.
    fn get(&self, s: &mut Self::Strand, done: &Self::Strand);
    /// The task finished.
    fn task_end(&self, s: &mut Self::Strand);
    /// Sequential runtime only: child returned to `parent` in DFS order.
    fn task_return(&self, _parent: &mut Self::Strand, _child: &mut Self::Strand) {}

    /// The strand's current position.
    fn pos(s: &Self::Strand) -> Self::Pos;
    /// The strand's future id (0 for the fork-join root region).
    fn future_id(s: &Self::Strand) -> u32;
    /// Does the stored position `a` precede strand `s`? The one query the
    /// whole protocol is built on.
    fn precedes(&self, a: Self::Pos, s: &Self::Strand) -> bool;

    /// English-order comparison of two stored positions (only consulted
    /// under [`ReaderPolicy::PerFutureLR`]).
    fn eng_less(&self, _a: &Self::Pos, _b: &Self::Pos) -> bool {
        false
    }
    /// Hebrew-order comparison of two stored positions.
    fn heb_less(&self, _a: &Self::Pos, _b: &Self::Pos) -> bool {
        false
    }
    /// Same-future serial comparison of two stored positions.
    fn pos_precedes(&self, _a: &Self::Pos, _b: &Self::Pos) -> bool {
        false
    }

    /// Reachability-structure heap bytes (Fig. 5).
    fn heap_bytes(&self) -> usize;
    /// Bitmap/set merges performed so far (0 for engines without sets).
    fn merges(&self) -> u64 {
        0
    }
    /// Full `cp`/`gp` set-layer counters (allocation tiers, chunk sharing,
    /// lineage fast exits); zeros for engines without sets.
    fn set_stats_snapshot(&self) -> sfrd_reach::SetStatsSnapshot {
        sfrd_reach::SetStatsSnapshot::default()
    }
    /// Order-maintenance contention counters (zeros for engines without
    /// OM lists, e.g. MultiBags).
    fn om_stats(&self) -> sfrd_om::OmStats {
        sfrd_om::OmStats::default()
    }
    /// Slabs bump-allocated in the engine's per-future node arena (0 for
    /// engines without one).
    fn arena_slabs(&self) -> u64 {
        0
    }
}

/// The unified detector: the on-the-fly protocol of §1/§3 over any
/// [`ReachEngine`], speaking both the per-access and the batched access
/// protocol. `SfDetector`, `FoDetector`, `MbDetector` and `WspDetector`
/// are type aliases of this struct.
pub struct EventSink<E: ReachEngine> {
    pub(crate) engine: E,
    root: Mutex<Option<E::Strand>>,
    pub(crate) history: Option<AccessHistory<E::Pos>>,
    /// Detected races.
    pub collector: RaceCollector,
    /// Execution counters (Fig. 3).
    pub counters: Counters,
    /// Reachability queries skipped by the writer-epoch verdict cache.
    seqlock_hits: AtomicU64,
}

impl<E: ReachEngine> EventSink<E> {
    /// Couple `engine` (with its root strand) to a fresh access history on
    /// the selected shadow backend.
    pub(crate) fn build(
        engine: (E, E::Strand),
        mode: Mode,
        policy: ReaderPolicy,
        backend: ShadowBackend,
    ) -> Self {
        let (engine, root) = engine;
        Self {
            engine,
            root: Mutex::new(Some(root)),
            history: matches!(mode, Mode::Full).then(|| AccessHistory::new(policy, backend)),
            collector: RaceCollector::default(),
            counters: Counters::default(),
            seqlock_hits: AtomicU64::new(0),
        }
    }

    /// The reachability engine (diagnostics).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The access history (diagnostics; `None` in reach mode).
    pub fn history(&self) -> Option<&AccessHistory<E::Pos>> {
        self.history.as_ref()
    }

    /// The report after (or during) a run. Batch-pipeline counters
    /// (flushes, filter hits) live in the [`Batched`](sfrd_runtime::Batched)
    /// wrapper; [`drive`](crate::drive) merges them in.
    pub fn report(&self) -> RaceReport {
        RaceReport {
            total_races: self.collector.total(),
            races: self.collector.distinct().into_iter().collect(),
            racy_addrs: self.collector.racy_addrs(),
            counts: self.counters.snapshot(),
            reach_bytes: self.engine.heap_bytes(),
            history_bytes: self.history.as_ref().map_or(0, |h| h.heap_bytes()),
            metrics: {
                let om = self.engine.om_stats();
                let set = self.engine.set_stats_snapshot();
                MetricsSnapshot {
                    lock_ops: self.history.as_ref().map_or(0, |h| h.lock_ops()),
                    seqlock_hits: self.seqlock_hits.load(Ordering::Relaxed),
                    bitmap_merges: self.engine.merges(),
                    om_fast_inserts: om.fast_inserts,
                    om_group_locks: om.group_locks,
                    om_global_escalations: om.global_escalations,
                    om_query_retries: om.query_retries,
                    depa_label_words: om.depa_label_words,
                    depa_spills: om.depa_spills,
                    depa_max_depth: om.depa_max_depth,
                    shadow_fast_hits: self.history.as_ref().map_or(0, |h| h.fast_hits()),
                    shadow_cas_retries: self.history.as_ref().map_or(0, |h| h.cas_retries()),
                    page_allocs: self.history.as_ref().map_or(0, |h| h.page_allocs()),
                    set_bytes: set.bytes,
                    set_allocs: set.allocations,
                    set_tier_inline: set.tier_inline,
                    set_tier_sparse: set.tier_sparse,
                    set_tier_chunked: set.tier_chunked,
                    set_tier_dense: set.tier_dense,
                    set_chunks_shared: set.chunks_shared,
                    set_chunks_copied: set.chunks_copied,
                    set_lineage_hits: set.lineage_hits,
                    kernel_simd_calls: set.kernel_simd_calls,
                    kernel_scalar_calls: set.kernel_scalar_calls,
                    arena_slabs: self.engine.arena_slabs(),
                    prefetch_issued: self.history.as_ref().map_or(0, |h| h.prefetch_issued()),
                    ..MetricsSnapshot::default()
                }
            },
        }
    }

    /// The read half of the protocol, shared by both access paths: check
    /// the last writer, then retain the reader. With a [`VerdictCache`]
    /// (batch path), a writer whose epoch matches a cached serial verdict
    /// skips the reachability query.
    fn check_read(
        &self,
        e: &mut LocEntry<E::Pos>,
        addr: u64,
        fut: u32,
        pos: E::Pos,
        s: &E::Strand,
        mut verdicts: Option<&mut VerdictCache>,
    ) {
        Counters::bump(&self.counters.reads);
        if let Some(w) = e.writer {
            // Same-position fast path: an accessor at the current position
            // is trivially serial; no reachability query needed.
            if w != pos {
                if verdicts
                    .as_deref_mut()
                    .is_some_and(|v| v.check(addr, e.writer_seq))
                {
                    self.seqlock_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    Counters::bump(&self.counters.queries);
                    if self.engine.precedes(w, s) {
                        if let Some(v) = verdicts {
                            v.store(addr, e.writer_seq);
                        }
                    } else {
                        self.collector.report(addr, RaceKind::WriteRead);
                    }
                }
            }
        }
        let eng = &self.engine;
        e.readers.record(
            fut,
            pos,
            |a, b| eng.eng_less(a, b),
            |a, b| eng.heb_less(a, b),
            |a, b| eng.pos_precedes(a, b),
        );
    }

    /// The write half: check the last writer and every retained reader,
    /// then open a new write epoch. The new writer is this strand's own
    /// position, which serially precedes everything the strand does later
    /// — so the fresh epoch's verdict is cached immediately.
    fn check_write(
        &self,
        e: &mut LocEntry<E::Pos>,
        addr: u64,
        pos: E::Pos,
        s: &E::Strand,
        mut verdicts: Option<&mut VerdictCache>,
    ) {
        Counters::bump(&self.counters.writes);
        if let Some(w) = e.writer {
            if w != pos {
                if verdicts
                    .as_deref_mut()
                    .is_some_and(|v| v.check(addr, e.writer_seq))
                {
                    self.seqlock_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    Counters::bump(&self.counters.queries);
                    if !self.engine.precedes(w, s) {
                        self.collector.report(addr, RaceKind::WriteWrite);
                    }
                }
            }
        }
        let mut reader_queries = 0;
        e.readers.for_each(|r| {
            if r == pos {
                return;
            }
            reader_queries += 1;
            if !self.engine.precedes(r, s) {
                self.collector.report(addr, RaceKind::ReadWrite);
            }
        });
        Counters::add(&self.counters.queries, reader_queries);
        e.begin_write_epoch(pos);
        if let Some(v) = verdicts {
            v.store(addr, e.writer_seq);
        }
    }

    /// The zero-store read fast path (paged backend): attempt to prove the
    /// read redundant from one validated snapshot — no lock, no store to
    /// the shadow entry. The reader side is decided by the LR no-op test
    /// inside [`PageCursor::fast_read`]; the writer side is decided here,
    /// with the same ladder as [`check_read`](Self::check_read) minus the
    /// mutation: same-position, then the epoch-keyed verdict cache, then a
    /// direct reachability query (whose positive verdict is cached
    /// strand-locally — still nothing written to the entry). A negative
    /// verdict (a race) returns `false` so the caller's locked path
    /// re-derives and reports exactly once.
    fn fast_read(
        &self,
        cur: &mut PageCursor<'_, E::Pos>,
        addr: u64,
        fut: u32,
        pos: E::Pos,
        s: &E::Strand,
        mut verdicts: Option<&mut VerdictCache>,
    ) -> bool {
        let eng = &self.engine;
        let hit = cur.fast_read(
            addr,
            fut,
            pos,
            |a, b| eng.eng_less(a, b),
            |a, b| eng.heb_less(a, b),
            |a, b| eng.pos_precedes(a, b),
            |w, wseq| match w {
                None => true,
                Some(w) if w == pos => true,
                Some(w) => {
                    if verdicts.as_deref_mut().is_some_and(|v| v.check(addr, wseq)) {
                        self.seqlock_hits.fetch_add(1, Ordering::Relaxed);
                        true
                    } else {
                        Counters::bump(&self.counters.queries);
                        if self.engine.precedes(w, s) {
                            if let Some(v) = verdicts {
                                v.store(addr, wseq);
                            }
                            true
                        } else {
                            false
                        }
                    }
                }
            },
        );
        if hit {
            // The access happened: Fig. 3 counts stay path-invariant.
            Counters::bump(&self.counters.reads);
        }
        hit
    }
}

impl<E: ReachEngine> TaskHooks for EventSink<E> {
    type Strand = E::Strand;

    fn root(&self) -> E::Strand {
        self.root
            .lock()
            .take()
            .expect("detector is one-shot: root strand already taken")
    }

    fn on_spawn(&self, parent: &mut E::Strand) -> E::Strand {
        Counters::bump(&self.counters.spawns);
        self.engine.spawn(parent)
    }

    fn on_create(&self, parent: &mut E::Strand) -> E::Strand {
        Counters::bump(&self.counters.creates);
        self.engine.create(parent)
    }

    fn on_sync(&self, s: &mut E::Strand, children: Vec<E::Strand>) {
        Counters::bump(&self.counters.syncs);
        self.engine.sync(s, &children);
    }

    fn on_get(&self, s: &mut E::Strand, done: &E::Strand) {
        Counters::bump(&self.counters.gets);
        self.engine.get(s, done);
    }

    fn on_task_end(&self, s: &mut E::Strand) {
        self.engine.task_end(s);
    }

    fn on_task_return(&self, parent: &mut E::Strand, child: &mut E::Strand) {
        self.engine.task_return(parent, child);
    }

    #[inline]
    fn on_read(&self, s: &mut E::Strand, addr: u64) {
        let Some(history) = &self.history else { return };
        let pos = E::pos(s);
        let fut = E::future_id(s);
        if let AccessHistory::Paged(paged) = history {
            let mut cur = paged.cursor();
            if self.fast_read(&mut cur, addr, fut, pos, s, None) {
                return;
            }
            cur.locked(addr, |e| self.check_read(e, addr, fut, pos, s, None));
            return;
        }
        history.locked(addr, |e| self.check_read(e, addr, fut, pos, s, None));
    }

    #[inline]
    fn on_write(&self, s: &mut E::Strand, addr: u64) {
        let Some(history) = &self.history else { return };
        let pos = E::pos(s);
        history.locked(addr, |e| self.check_write(e, addr, pos, s, None));
    }

    /// The batched hot path, per backend:
    ///
    /// * **sharded** — stable-sort the buffered accesses by shadow shard
    ///   (same address ⇒ same shard, so per-address program order is
    ///   preserved and ascending shard index is the canonical lock order),
    ///   then take each touched shard's lock once and run the shared check
    ///   logic on every access in that shard;
    /// * **paged** — replay in buffer order (per-address program order for
    ///   free, no sort) through one [`PageCursor`], so runs of same-page
    ///   addresses skip the directory walk; each read first tries the
    ///   zero-store fast path, and only state-changing accesses enter a
    ///   slot's write section. No lock is taken on the mapped path.
    fn on_access_batch(&self, s: &mut E::Strand, batch: &mut AccessBatch) {
        let Some(history) = &self.history else {
            batch.discard();
            return;
        };
        let pos = E::pos(s);
        let fut = E::future_id(s);
        // Write-combined repeats never reach this sink as entries, but they
        // are real instrumented accesses: fold them into the Fig. 3
        // counters so counts stay schedule- and filter-invariant.
        let (filtered_reads, filtered_writes) = batch.take_filtered();
        Counters::add(&self.counters.reads, filtered_reads);
        Counters::add(&self.counters.writes, filtered_writes);
        let (entries, verdicts) = batch.parts();
        match history {
            AccessHistory::Paged(paged) => {
                let mut cur = paged.cursor();
                let mut prefetched: u64 = 0;
                for (i, a) in entries.iter().enumerate() {
                    // Overlap the slot-seqlock work on entry `i` with the
                    // cache fill for entry `i + 1`; the tally is folded into
                    // the shared counter once per batch to keep atomic
                    // traffic off this loop.
                    if let Some(next) = entries.get(i + 1) {
                        if next.addr >> 3 != a.addr >> 3 && paged.prefetch_slot(next.addr) {
                            prefetched += 1;
                        }
                    }
                    if a.is_write {
                        cur.locked(a.addr, |e| {
                            self.check_write(e, a.addr, pos, s, Some(&mut *verdicts))
                        });
                    } else if !self.fast_read(&mut cur, a.addr, fut, pos, s, Some(&mut *verdicts)) {
                        cur.locked(a.addr, |e| {
                            self.check_read(e, a.addr, fut, pos, s, Some(&mut *verdicts))
                        });
                    }
                }
                if prefetched != 0 {
                    paged.note_prefetches(prefetched);
                }
            }
            AccessHistory::Sharded(sharded) => {
                entries.sort_by_key(|a| sharded.shard_index(a.addr));
                let mut i = 0;
                while i < entries.len() {
                    let shard = sharded.shard_index(entries[i].addr);
                    let mut j = i + 1;
                    while j < entries.len() && sharded.shard_index(entries[j].addr) == shard {
                        j += 1;
                    }
                    sharded.with_shard(shard, |view| {
                        for a in &entries[i..j] {
                            let e = view.entry(a.addr);
                            if a.is_write {
                                self.check_write(e, a.addr, pos, s, Some(&mut *verdicts));
                            } else {
                                self.check_read(e, a.addr, fut, pos, s, Some(&mut *verdicts));
                            }
                        }
                    });
                    i = j;
                }
            }
        }
        entries.clear();
    }
}
