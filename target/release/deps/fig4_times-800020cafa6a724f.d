/root/repo/target/release/deps/fig4_times-800020cafa6a724f.d: crates/sfrd-bench/src/bin/fig4_times.rs

/root/repo/target/release/deps/fig4_times-800020cafa6a724f: crates/sfrd-bench/src/bin/fig4_times.rs

crates/sfrd-bench/src/bin/fig4_times.rs:
