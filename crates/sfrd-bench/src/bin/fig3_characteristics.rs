//! Regenerates **Figure 3**: benchmark input sizes and execution
//! characteristics — total reads, writes, reachability queries, futures
//! used, and computation-dag nodes.
//!
//! Counters come from a full SF-Order run on one worker (counters are
//! schedule-invariant; the workload suite asserts detectors agree).

use sfrd_bench::{run_bench, sci, HarnessArgs, Table};
use sfrd_core::{DetectorKind, DriveConfig, Mode};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "# Figure 3: benchmark execution characteristics (scale: {:?})",
        args.scale
    );
    let mut t = Table::new(&[
        "bench",
        "input",
        "# reads",
        "# writes",
        "# queries",
        "# futures",
        "# nodes",
    ]);
    for name in &args.benches {
        let cfg = DriveConfig::with(DetectorKind::SfOrder, Mode::Full, 1);
        let (out, w) = run_bench(name, args.scale, cfg);
        let rep = out.report.expect("detector attached");
        let c = rep.counts;
        t.row(vec![
            name.clone(),
            w.input_desc(),
            sci(c.reads),
            sci(c.writes),
            sci(c.queries),
            c.futures.to_string(),
            c.nodes().to_string(),
        ]);
    }
    print!("{}", t.render());
}
