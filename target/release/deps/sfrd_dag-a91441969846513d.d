/root/repo/target/release/deps/sfrd_dag-a91441969846513d.d: crates/sfrd-dag/src/lib.rs crates/sfrd-dag/src/generator.rs crates/sfrd-dag/src/graph.rs crates/sfrd-dag/src/ids.rs crates/sfrd-dag/src/oracle.rs crates/sfrd-dag/src/paths.rs crates/sfrd-dag/src/recorder.rs crates/sfrd-dag/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libsfrd_dag-a91441969846513d.rmeta: crates/sfrd-dag/src/lib.rs crates/sfrd-dag/src/generator.rs crates/sfrd-dag/src/graph.rs crates/sfrd-dag/src/ids.rs crates/sfrd-dag/src/oracle.rs crates/sfrd-dag/src/paths.rs crates/sfrd-dag/src/recorder.rs crates/sfrd-dag/src/trace.rs Cargo.toml

crates/sfrd-dag/src/lib.rs:
crates/sfrd-dag/src/generator.rs:
crates/sfrd-dag/src/graph.rs:
crates/sfrd-dag/src/ids.rs:
crates/sfrd-dag/src/oracle.rs:
crates/sfrd-dag/src/paths.rs:
crates/sfrd-dag/src/recorder.rs:
crates/sfrd-dag/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
