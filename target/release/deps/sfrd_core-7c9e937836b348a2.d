/root/repo/target/release/deps/sfrd_core-7c9e937836b348a2.d: crates/sfrd-core/src/lib.rs crates/sfrd-core/src/detectors.rs crates/sfrd-core/src/driver.rs crates/sfrd-core/src/fastpath.rs crates/sfrd-core/src/recording.rs crates/sfrd-core/src/report.rs crates/sfrd-core/src/shared.rs crates/sfrd-core/src/wsp.rs

/root/repo/target/release/deps/libsfrd_core-7c9e937836b348a2.rlib: crates/sfrd-core/src/lib.rs crates/sfrd-core/src/detectors.rs crates/sfrd-core/src/driver.rs crates/sfrd-core/src/fastpath.rs crates/sfrd-core/src/recording.rs crates/sfrd-core/src/report.rs crates/sfrd-core/src/shared.rs crates/sfrd-core/src/wsp.rs

/root/repo/target/release/deps/libsfrd_core-7c9e937836b348a2.rmeta: crates/sfrd-core/src/lib.rs crates/sfrd-core/src/detectors.rs crates/sfrd-core/src/driver.rs crates/sfrd-core/src/fastpath.rs crates/sfrd-core/src/recording.rs crates/sfrd-core/src/report.rs crates/sfrd-core/src/shared.rs crates/sfrd-core/src/wsp.rs

crates/sfrd-core/src/lib.rs:
crates/sfrd-core/src/detectors.rs:
crates/sfrd-core/src/driver.rs:
crates/sfrd-core/src/fastpath.rs:
crates/sfrd-core/src/recording.rs:
crates/sfrd-core/src/report.rs:
crates/sfrd-core/src/shared.rs:
crates/sfrd-core/src/wsp.rs:
