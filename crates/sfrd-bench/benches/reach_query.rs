//! Micro-benchmarks of the reachability building blocks the paper's
//! complexity argument rests on: SP-order queries over the pseudo-SP-dag
//! (shared by every engine), SF-Order's bitmap operations, and the
//! `FutureSet` merge discipline.

use criterion::{criterion_group, criterion_main, Criterion};
use sfrd_dag::FutureId;
use sfrd_reach::bitmap::{merge, FutureSet, SetStats};
use sfrd_reach::kernels::ChunkWords;
use sfrd_reach::{Kernel, KernelKind, Merge512, SetRepr, SpOrder, SpPos};
use std::hint::black_box;
use std::sync::Arc;

/// Both set families, for side-by-side micro-bench entries.
const FAMILIES: [(&str, SetRepr); 2] = [("dense", SetRepr::Dense), ("adaptive", SetRepr::Adaptive)];

/// The kernels available on this machine: scalar always, plus the
/// auto-resolved vector kernel when it differs.
fn available_kernels() -> Vec<Kernel> {
    let mut v = vec![Kernel::Scalar];
    let auto = KernelKind::Auto.resolve();
    if auto != Kernel::Scalar {
        v.push(auto);
    }
    v
}

/// Build a fork tree and collect strand positions.
fn build_positions(forks: usize) -> (SpOrder, Vec<SpPos>) {
    let (sp, mut root) = SpOrder::new();
    let mut positions = vec![root.pos()];
    let mut frontier = Vec::new();
    for _ in 0..forks {
        let mut child = sp.fork(&mut root);
        positions.push(child.pos());
        // Children fork once too, giving depth-2 structure.
        let grand = sp.fork(&mut child);
        positions.push(grand.pos());
        sp.sync(&mut child);
        positions.push(child.pos());
        frontier.push(child);
    }
    sp.sync(&mut root);
    positions.push(root.pos());
    (sp, positions)
}

fn bench_sp_precedes(c: &mut Criterion) {
    let (sp, positions) = build_positions(2000);
    c.bench_function("reach/sp_precedes_eq", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 6151) % positions.len();
            let j = (i * 13 + 5) % positions.len();
            black_box(sp.precedes_eq(positions[i], positions[j]))
        })
    });
}

fn bench_bitmap_contains(c: &mut Criterion) {
    for (family, repr) in FAMILIES {
        // A k = 4096 futures set, half populated.
        let mut set = FutureSet::empty_in(repr);
        for i in (0..4096).step_by(2) {
            set = set.with(FutureId(i));
        }
        c.bench_function(&format!("reach/gp_contains_k4096/{family}"), |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1237) % 4096;
                black_box(set.contains(FutureId(i)))
            })
        });
    }
}

fn bench_bitmap_merge(c: &mut Criterion) {
    for (family, repr) in FAMILIES {
        let stats = SetStats::default();
        let mut a = FutureSet::empty_in(repr);
        let mut bset = FutureSet::empty_in(repr);
        for i in 0..2048 {
            if i % 2 == 0 {
                a = a.with(FutureId(i));
            } else {
                bset = bset.with(FutureId(i));
            }
        }
        let a = Arc::new(a);
        let bset = Arc::new(bset);
        c.bench_function(&format!("reach/gp_merge_divergent_k2048/{family}"), |b| {
            b.iter(|| black_box(merge(&a, &bset, &stats)))
        });
        let sub = Arc::new(FutureSet::singleton_in(FutureId(0), repr));
        c.bench_function(&format!("reach/gp_merge_subset_shared/{family}"), |b| {
            b.iter(|| black_box(merge(&a, &sub, &stats)))
        });
    }
}

/// The derivation-chain micro-bench behind the tentpole: extending a
/// growing `gp` one future at a time. Dense copies every word per step;
/// adaptive amortizes through the chunk tail buffer (8 zero-allocation
/// extensions per flush).
fn bench_growth_chain(c: &mut Criterion) {
    for (family, repr) in FAMILIES {
        c.bench_function(&format!("reach/gp_growth_chain_k2048/{family}"), |b| {
            b.iter(|| {
                let mut set = FutureSet::empty_in(repr);
                for i in 0..2048 {
                    set = set.with(FutureId(i));
                }
                black_box(set.len())
            })
        });
    }
}

/// Deterministic chunk payloads (SplitMix64) for the kernel rows.
fn sample_chunks(n: usize, seed: u64) -> Vec<ChunkWords> {
    let mut s = seed;
    let mut next = || {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let mut w = [0u64; 8];
            for lane in &mut w {
                *lane = next();
            }
            w
        })
        .collect()
}

/// The raw 512-bit primitives, per kernel — the `simd_kernels` tentpole
/// evidence rows. 256 chunk pairs (16 KiB working set) so the loop
/// measures the kernel, not one register-resident chunk.
fn bench_chunk_kernels(c: &mut Criterion) {
    const PAIRS: usize = 256;
    let a = sample_chunks(PAIRS, 1);
    let b = sample_chunks(PAIRS, 2);
    // Supersets of `a`, so subset512 runs its full no-early-exit pass
    // with the answer `true` (the common case on the merge ladder).
    let sup: Vec<ChunkWords> = a
        .iter()
        .zip(&b)
        .map(|(x, y)| Kernel::Scalar.or512(x, y))
        .collect();
    // `eq512` needs equal *contents* in distinct allocations: comparing a
    // chunk against itself lets the inlined scalar path constant-fold the
    // whole loop away and the row measures nothing.
    let a_twin = a.clone();
    for k in available_kernels() {
        let label = k.label();
        c.bench_function(&format!("reach/kernel_or512x{PAIRS}/{label}"), |bch| {
            bch.iter(|| {
                // Fold every lane of every output: consuming only one
                // word would let the inlined scalar arm dead-code the
                // other seven and win on work it never did.
                let mut acc = 0u64;
                for (x, y) in a.iter().zip(&b) {
                    let out = k.or512(black_box(x), black_box(y));
                    for w in out {
                        acc ^= w;
                    }
                }
                acc
            })
        });
        c.bench_function(&format!("reach/kernel_or_into_x{PAIRS}/{label}"), |bch| {
            // The production shape: `union_counted_k` accumulates source
            // chunks into a freshly copied destination in place.
            bch.iter(|| {
                let mut dst = [0u64; 8];
                for x in &a {
                    k.or_into(&mut dst, black_box(x));
                }
                dst[0] ^ dst[7]
            })
        });
        c.bench_function(&format!("reach/kernel_subset512x{PAIRS}/{label}"), |bch| {
            bch.iter(|| {
                let mut hits = 0u32;
                for (x, y) in a.iter().zip(&sup) {
                    hits += k.subset512(black_box(x), black_box(y)) as u32;
                }
                assert_eq!(hits, PAIRS as u32);
                hits
            })
        });
        c.bench_function(&format!("reach/kernel_eq512x{PAIRS}/{label}"), |bch| {
            bch.iter(|| {
                let mut hits = 0u32;
                for (x, y) in a.iter().zip(&a_twin) {
                    hits += k.eq512(black_box(x), black_box(y)) as u32;
                }
                assert_eq!(hits, PAIRS as u32);
                hits
            })
        });
        c.bench_function(&format!("reach/kernel_popcnt512x{PAIRS}/{label}"), |bch| {
            // The `Chunk::from_words` hot path: every copied chunk pays
            // one popcount. The default target has no POPCNT instruction,
            // so this is the widest scalar-vs-vector gap of the suite.
            bch.iter(|| {
                let mut n = 0u32;
                for x in &a {
                    n += k.popcnt512(black_box(x));
                }
                n
            })
        });
        c.bench_function(&format!("reach/kernel_merge512x{PAIRS}/{label}"), |bch| {
            // The fused production union step (`Chunked::union` on a
            // genuinely mixed chunk pair): or + both collapse probes +
            // popcount in a single dispatch. Random pairs never
            // collapse, so every iteration takes the fresh path.
            bch.iter(|| {
                let mut n = 0u32;
                for (x, y) in a.iter().zip(&b) {
                    match k.merge512(black_box(x), black_box(y)) {
                        Merge512::Fresh(words, ones) => n += ones ^ (words[0] as u32 & 1),
                        _ => n += 1,
                    }
                }
                n
            })
        });
        let pairs: Vec<(&ChunkWords, &ChunkWords)> = a.iter().zip(&sup).collect();
        c.bench_function(
            &format!("reach/kernel_subset_many_x{PAIRS}/{label}"),
            |bch| {
                // The batched form `Chunked::subset_of` actually runs: one
                // dispatch per gathered run, loop inside the vector kernel.
                bch.iter(|| {
                    let (ok, tested) = k.subset512_many(black_box(&pairs));
                    assert!(ok && tested == PAIRS as u64);
                    tested
                })
            },
        );
    }
}

/// End-to-end chunked merges under each kernel: the same divergent-set
/// union `gp_merge_divergent_k2048/adaptive` runs, but with the engine
/// stats pinned per kernel so the dispatch cost is included.
fn bench_merge_per_kernel(c: &mut Criterion) {
    for k in available_kernels() {
        let kind = match k {
            Kernel::Scalar => KernelKind::Scalar,
            _ => KernelKind::Auto,
        };
        let stats = SetStats::with_kernel(kind);
        let mut a = FutureSet::empty_in(SetRepr::Adaptive);
        let mut bset = FutureSet::empty_in(SetRepr::Adaptive);
        for i in 0..2048 {
            if i % 2 == 0 {
                a = a.with(FutureId(i));
            } else {
                bset = bset.with(FutureId(i));
            }
        }
        let a = Arc::new(a);
        let bset = Arc::new(bset);
        c.bench_function(
            &format!("reach/gp_merge_divergent_k2048_kernel/{}", k.label()),
            |b| b.iter(|| black_box(merge(&a, &bset, &stats))),
        );
    }
}

criterion_group!(
    reach,
    bench_sp_precedes,
    bench_bitmap_contains,
    bench_bitmap_merge,
    bench_growth_chain,
    bench_chunk_kernels,
    bench_merge_per_kernel
);
criterion_main!(reach);
