//! Detector matrix on generated programs:
//!
//! * WSP-Order vs the oracle on fork-join-only programs (its legal
//!   domain), across schedules;
//! * WSP-Order vs SF-Order agreement on the same programs (SF-Order
//!   degenerates to WSP-Order when k = 0);
//! * FastPath-wrapped variants of every parallel detector vs their plain
//!   counterparts.

use std::sync::Arc;

use rand::prelude::*;

use sfrd_core::{
    FastPath, FoDetector, GenWorkload, Mode, RecordingHooks, SfDetector, Workload, WspDetector,
};
use sfrd_dag::generator::{GenParams, GenProgram};
use sfrd_runtime::hooks::PairHooks;
use sfrd_runtime::Runtime;
use sfrd_shadow::ReaderPolicy;

/// Fork-join-only generator parameters (no creates, no gets).
fn forkjoin_params() -> GenParams {
    GenParams {
        max_tasks: 24,
        max_body_len: 6,
        addr_space: 4,
        weights: [4, 3, 2, 0, 0],
        ..Default::default()
    }
}

#[test]
fn wsp_matches_oracle_on_forkjoin_programs() {
    let mut rng = StdRng::seed_from_u64(0x757);
    for round in 0..15 {
        let prog = GenProgram::random(&mut rng, &forkjoin_params());
        assert_eq!(prog.counts().1, 0, "generator must not emit creates");
        for policy in [ReaderPolicy::All, ReaderPolicy::PerFutureLR] {
            let hooks = Arc::new(PairHooks(
                RecordingHooks::new(),
                WspDetector::new(Mode::Full, policy),
            ));
            let rt: Runtime<PairHooks<RecordingHooks, WspDetector>> = Runtime::new(2);
            let w = GenWorkload(prog.clone());
            rt.run(Arc::clone(&hooks), |ctx| w.run(ctx));
            drop(rt);
            let PairHooks(rec, det) = Arc::try_unwrap(hooks).ok().expect("sole owner");
            let recorded = RecordingHooks::finish(Arc::new(rec));
            let want: std::collections::BTreeSet<u64> =
                recorded.races().iter().map(|r| r.addr).collect();
            assert_eq!(
                det.report().racy_addrs,
                want,
                "wsp {policy:?} round {round}\n{prog:?}"
            );
        }
    }
}

#[test]
fn wsp_and_sf_agree_on_forkjoin_programs() {
    let mut rng = StdRng::seed_from_u64(0x5F57);
    for _ in 0..15 {
        let prog = GenProgram::random(&mut rng, &forkjoin_params());

        let wsp = Arc::new(WspDetector::new(Mode::Full, ReaderPolicy::All));
        let rt: Runtime<WspDetector> = Runtime::new(2);
        let w = GenWorkload(prog.clone());
        rt.run(Arc::clone(&wsp), |ctx| w.run(ctx));
        drop(rt);

        let sf = Arc::new(SfDetector::new(Mode::Full, ReaderPolicy::All));
        let rt: Runtime<SfDetector> = Runtime::new(2);
        let w2 = GenWorkload(prog.clone());
        rt.run(Arc::clone(&sf), |ctx| w2.run(ctx));
        drop(rt);

        assert_eq!(wsp.report().racy_addrs, sf.report().racy_addrs, "{prog:?}");
        // Identical access counts too.
        assert_eq!(wsp.report().counts.reads, sf.report().counts.reads);
        assert_eq!(wsp.report().counts.writes, sf.report().counts.writes);
    }
}

#[test]
fn fastpath_wrapped_detectors_agree_with_plain() {
    let mut rng = StdRng::seed_from_u64(0xFA57);
    for _ in 0..10 {
        let prog = GenProgram::random(
            &mut rng,
            &GenParams {
                addr_space: 3,
                ..Default::default()
            },
        );

        let plain = Arc::new(FoDetector::new(Mode::Full));
        let rt: Runtime<FoDetector> = Runtime::new(2);
        let w = GenWorkload(prog.clone());
        rt.run(Arc::clone(&plain), |ctx| w.run(ctx));
        drop(rt);

        let fast = Arc::new(FastPath(FoDetector::new(Mode::Full)));
        let rt: Runtime<FastPath<FoDetector>> = Runtime::new(2);
        let w2 = GenWorkload(prog.clone());
        rt.run(Arc::clone(&fast), |ctx| w2.run(ctx));
        drop(rt);

        assert_eq!(
            plain.report().racy_addrs,
            fast.0.report().racy_addrs,
            "{prog:?}"
        );
        // The filter never admits MORE accesses than happened.
        assert!(fast.0.report().counts.reads <= plain.report().counts.reads);
    }
}
