//! Threaded stress tests for both order-maintenance backends: concurrent
//! inserters + concurrent lock-free queriers, validated against a
//! total-order oracle rebuilt from the final list.
//!
//! The `OmList` cells force group splits and group-label respreads; the
//! DePa cells exercise the fork-local label scheme (run tickets under
//! contention, spill chains on deep labels) and additionally assert the
//! structural guarantees `global_escalations == 0` and
//! `query_retries == 0`. DePa cells run with smaller counts: repeated
//! same-anchor runs grow labels linearly in the ticket, so the oracle
//! workloads are quadratic in total label bits.
//!
//! Run in release mode (CI does): debug-mode atomics make the seqlock
//! windows so long that the schedules stop resembling production.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sfrd_om::{OmBackend, OmHandle, OmOrder};

/// Rank oracle: handle → position in the list's true total order, read
/// out *after* all writers joined. `order()` answers must agree with rank
/// comparison for every pair.
fn rank_oracle(om: &OmOrder) -> BTreeMap<usize, usize> {
    om.iter_order()
        .into_iter()
        .enumerate()
        .map(|(rank, h)| (h.index(), rank))
        .collect()
}

fn assert_order_matches_oracle(
    om: &OmOrder,
    handles: &[OmHandle],
    oracle: &BTreeMap<usize, usize>,
) {
    let n = handles.len();
    let step = (n / 64).max(1);
    for i in (0..n).step_by(step) {
        for j in (0..n).step_by(step) {
            let a = handles[i];
            let b = handles[j];
            let expect = oracle[&a.index()].cmp(&oracle[&b.index()]);
            assert_eq!(
                om.order(a, b),
                expect,
                "order({:?}, {:?}) disagrees with the rank oracle",
                a,
                b
            );
        }
    }
}

/// N inserter threads append to disjoint anchor chains while M query
/// threads verify a fixed chain; afterwards every thread's chain must be
/// contiguous in rank space between its anchors and all pairwise orders
/// must match the oracle.
fn concurrent_inserters(backend: OmBackend, per: usize) {
    const WRITERS: usize = 4;
    const READERS: usize = 2;

    let (om, base) = OmOrder::new(backend);
    let om = Arc::new(om);
    // Anchors: base < a0 < a1 < a2 < a3, built serially.
    let mut anchors = Vec::with_capacity(WRITERS);
    let mut last = base;
    for _ in 0..WRITERS {
        last = om.insert_after(last);
        anchors.push(last);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let om = Arc::clone(&om);
            let stop = Arc::clone(&stop);
            let chain: Vec<OmHandle> = std::iter::once(base).chain(anchors.clone()).collect();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for w in chain.windows(2) {
                        assert!(om.precedes(w[0], w[1]), "anchor order violated");
                        assert!(!om.precedes(w[1], w[0]));
                    }
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let om = Arc::clone(&om);
            let anchor = anchors[w];
            std::thread::spawn(move || {
                let mut chain = vec![anchor];
                let mut cur = anchor;
                for i in 0..per {
                    // Mix single inserts with combined runs, like
                    // SpOrder::fork does.
                    match i % 3 {
                        0 => {
                            cur = om.insert_after(cur);
                            chain.push(cur);
                        }
                        1 => {
                            let [a, b] = om.insert_n_after::<2>(cur);
                            chain.push(a);
                            chain.push(b);
                            cur = b;
                        }
                        _ => {
                            let [a, b, c] = om.insert_n_after::<3>(cur);
                            chain.push(a);
                            chain.push(b);
                            chain.push(c);
                            cur = c;
                        }
                    }
                }
                chain
            })
        })
        .collect();

    let chains: Vec<Vec<OmHandle>> = writers.into_iter().map(|t| t.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    let oracle = rank_oracle(&om);
    assert_eq!(oracle.len(), om.len(), "iter_order must cover every item");

    // Each writer appended after its own tail, so its chain is contiguous
    // and strictly between its anchor and the next writer's anchor.
    for (w, chain) in chains.iter().enumerate() {
        let ranks: Vec<usize> = chain.iter().map(|h| oracle[&h.index()]).collect();
        for pair in ranks.windows(2) {
            assert!(pair[0] < pair[1], "writer {w} chain out of order");
        }
        if w + 1 < chains.len() {
            let next_anchor_rank = oracle[&anchors[w + 1].index()];
            assert!(
                *ranks.last().unwrap() < next_anchor_rank,
                "writer {w} leaked past the next anchor"
            );
        }
    }

    // Pairwise order queries agree with the oracle across all chains.
    let sample: Vec<OmHandle> = chains
        .iter()
        .flat_map(|c| c.iter().step_by(97).copied())
        .collect();
    assert_order_matches_oracle(&om, &sample, &oracle);

    let stats = om.stats();
    match backend {
        OmBackend::OmList => {
            assert!(stats.splits > 0, "32k inserts must split groups: {stats:?}");
            assert!(
                stats.fast_inserts > stats.global_escalations,
                "fast path must dominate: {stats:?}"
            );
            assert!(
                stats.group_locks >= stats.fast_inserts,
                "every fast insert holds a group lock: {stats:?}"
            );
        }
        _ => {
            assert_eq!(stats.global_escalations, 0, "{stats:?}");
            assert_eq!(stats.query_retries, 0, "{stats:?}");
            assert_eq!(stats.group_locks, 0, "{stats:?}");
            assert!(stats.depa_max_depth > 64, "deep chains spill: {stats:?}");
        }
    }
}

#[test]
fn concurrent_inserters_match_rank_oracle() {
    concurrent_inserters(OmBackend::OmList, 8_000);
}

#[test]
fn depa_concurrent_inserters_match_rank_oracle() {
    concurrent_inserters(OmBackend::DePa, 2_000);
}

/// All writers hammer the SAME position (right after the base element).
/// OmList: maximal group-lock contention, geometric label-gap exhaustion,
/// forced splits of the head group, and forced full respreads. DePa: the
/// run-ticket counter is the only shared word — every concurrent run after
/// the same parent must land in a distinct, totally ordered slot. Query
/// threads must never observe the verification chain out of order.
fn head_hammer(backend: OmBackend, per: usize) {
    const WRITERS: usize = 4;
    const READERS: usize = 2;

    let (om, base) = OmOrder::new(backend);
    let om = Arc::new(om);
    let mut chain = vec![base];
    let mut last = base;
    for _ in 0..12 {
        last = om.insert_after(last);
        chain.push(last);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let om = Arc::clone(&om);
            let stop = Arc::clone(&stop);
            let chain = chain.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for w in chain.windows(2) {
                        assert!(om.precedes(w[0], w[1]));
                        assert!(!om.precedes(w[1], w[0]));
                    }
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let om = Arc::clone(&om);
            std::thread::spawn(move || {
                let mut mine = Vec::with_capacity(per);
                for _ in 0..per {
                    mine.push(om.insert_after(base));
                }
                mine
            })
        })
        .collect();
    let per_writer: Vec<Vec<OmHandle>> = writers.into_iter().map(|t| t.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    assert_eq!(om.len(), 1 + 12 + WRITERS * per);
    let stats = om.stats();
    match backend {
        OmBackend::OmList => {
            assert!(stats.splits > 0, "head hammering must split: {stats:?}");
            assert!(
                stats.respreads > 0,
                "repeated head splits must exhaust group-label gaps: {stats:?}"
            );
            // (item-level `relabels` may legitimately stay 0 here: splits
            // respace the head group's labels every ~GROUP_MAX/2 inserts,
            // well before 63 geometric halvings can exhaust a fresh gap.)
        }
        _ => {
            assert_eq!(stats.global_escalations, 0, "{stats:?}");
            assert_eq!(stats.query_retries, 0, "{stats:?}");
            // A later same-anchor run (higher ticket) precedes every
            // earlier one — verify per writer, whose handles are in
            // ticket order.
            for mine in &per_writer {
                for w in mine.windows(2) {
                    assert!(om.precedes(w[1], w[0]), "later run must nest before");
                }
            }
        }
    }

    // The verification chain survived every relabel/split/respread.
    let oracle = rank_oracle(&om);
    let chain_ranks: Vec<usize> = chain.iter().map(|h| oracle[&h.index()]).collect();
    for pair in chain_ranks.windows(2) {
        assert!(pair[0] < pair[1]);
    }
}

#[test]
fn head_hammer_forces_splits_and_respreads_under_queries() {
    head_hammer(OmBackend::OmList, 8_000);
}

#[test]
fn depa_head_hammer_run_tickets_stay_ordered() {
    head_hammer(OmBackend::DePa, 500);
}

/// Writers insert at uniformly random positions of a shared (pre-built)
/// backbone while queriers compare random backbone pairs; the final order
/// must agree with the oracle and every query observed during the run is
/// checked against the *immutable* backbone order. Runs on both backends.
#[test]
fn random_position_inserts_with_concurrent_queries() {
    const WRITERS: usize = 3;
    const PER: usize = 4_000;

    for backend in [OmBackend::OmList, OmBackend::DePa] {
        let (om, base) = OmOrder::new(backend);
        let om = Arc::new(om);
        let mut backbone = vec![base];
        let mut last = base;
        for _ in 0..256 {
            last = om.insert_after(last);
            backbone.push(last);
        }
        let backbone = Arc::new(backbone);

        let stop = Arc::new(AtomicBool::new(false));
        let querier = {
            let om = Arc::clone(&om);
            let stop = Arc::clone(&stop);
            let backbone = Arc::clone(&backbone);
            std::thread::spawn(move || {
                // Deterministic pseudo-random pair walk (no rand in dev-deps
                // of the integration target needed).
                let mut x = 0x9E3779B97F4A7C15u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = (x as usize >> 8) % backbone.len();
                    let j = (x as usize >> 24) % backbone.len();
                    let expect = i.cmp(&j);
                    assert_eq!(
                        om.order(backbone[i], backbone[j]),
                        expect,
                        "backbone order is immutable"
                    );
                }
            })
        };

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let om = Arc::clone(&om);
                let backbone = Arc::clone(&backbone);
                std::thread::spawn(move || {
                    let mut x = 0xD1B54A32D192ED03u64.wrapping_mul(w as u64 + 1) | 1;
                    for _ in 0..PER {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let i = (x as usize >> 8) % backbone.len();
                        // Insert after a random backbone element; the new item
                        // lands somewhere between backbone[i] and backbone[i+1].
                        om.insert_after(backbone[i]);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        querier.join().unwrap();

        let oracle = rank_oracle(&om);
        // Backbone stays in order, and random inserts landed inside the right
        // backbone gaps (checked implicitly: iter_order covers all items and
        // backbone ranks are strictly increasing).
        let ranks: Vec<usize> = backbone.iter().map(|h| oracle[&h.index()]).collect();
        for pair in ranks.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert_eq!(oracle.len(), 1 + 256 + WRITERS * PER);
        assert_order_matches_oracle(&om, &backbone, &oracle);
        if backend == OmBackend::DePa {
            let stats = om.stats();
            assert_eq!(stats.global_escalations, 0, "{stats:?}");
            assert_eq!(stats.query_retries, 0, "{stats:?}");
        }
    }
}
