//! Server-wide ingestion counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared by every connection and worker. Per-session
/// copies of the ingestion counters also land in each session's
/// [`RaceReport`](sfrd_core::RaceReport) under the `srv_*` metrics fields.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    pub(crate) sessions_open: AtomicU64,
    pub(crate) sessions_total: AtomicU64,
    pub(crate) frames_in: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) backpressure_stalls: AtomicU64,
}

/// Point-in-time snapshot of [`ServerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsView {
    /// Sessions currently open (handshake done, response not yet sent).
    pub sessions_open: u64,
    /// Sessions ever opened.
    pub sessions_total: u64,
    /// Journal frames ingested across all sessions.
    pub frames_in: u64,
    /// Journal bytes ingested across all sessions (headers + frames).
    pub bytes_in: u64,
    /// Times a connection reader blocked on its session's full ingestion
    /// queue. Nonzero means backpressure engaged: the slow consumer
    /// stalled its own connection, never the worker pool.
    pub backpressure_stalls: u64,
}

impl ServerMetrics {
    /// Snapshot the counters.
    pub fn view(&self) -> MetricsView {
        MetricsView {
            sessions_open: self.sessions_open.load(Ordering::Relaxed),
            sessions_total: self.sessions_total.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }
}
