//! Identifier newtypes shared across the whole workspace.

/// A node (strand) of the computation dag: a maximal instruction sequence
/// with no parallel control construct inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A future task. The root ("main") task is future 0; every `create` mints
/// a fresh id. Future ids are dense, which is what lets SF-Order represent
/// `cp`/`gp` sets as bitmaps with one bit per future.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FutureId(pub u32);

impl FutureId {
    /// The root task's future id.
    pub const ROOT: FutureId = FutureId(0);

    /// The future's dense index (its bit position in `cp`/`gp` bitmaps).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for FutureId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(FutureId(7).to_string(), "F7");
        assert_eq!(FutureId::ROOT.index(), 0);
    }
}
