//! Record and analyze execution traces offline.
//!
//! ```sh
//! # Record a benchmark's execution (dag + access log) to a trace file:
//! cargo run -p sfrd-bench --release --bin trace_tool -- record sw /tmp/sw.trace --scale small
//!
//! # Analyze a trace: structure validation, dag stats, exact race set:
//! cargo run -p sfrd-bench --release --bin trace_tool -- analyze /tmp/sw.trace
//! ```
//!
//! Offline analysis uses the brute-force oracle, so it is exact but
//! quadratic per location — meant for small/medium traces and debugging,
//! not for the full-scale benchmarks.

use std::io::{BufReader, BufWriter};
use std::sync::Arc;

use sfrd_core::{RecordingHooks, Workload};
use sfrd_dag::{read_trace, write_trace};
use sfrd_runtime::run_sequential;
use sfrd_workloads::{make_bench, Scale, BENCH_NAMES};

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace_tool record <bench> <file> [--scale small|medium|paper]\n  \
         trace_tool analyze <file>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let path = args.get(2).unwrap_or_else(|| usage());
            if !BENCH_NAMES.contains(&name.as_str()) {
                eprintln!("unknown bench {name:?}");
                usage();
            }
            let scale = match args.get(4).map(String::as_str) {
                Some("medium") => Scale::Medium,
                Some("paper") => Scale::Paper,
                _ => Scale::Small,
            };
            let hooks = RecordingHooks::new();
            let w = make_bench(name, scale, 0xBE7C);
            run_sequential(&hooks, |ctx| w.run(ctx));
            assert!(
                w.verify_ok(),
                "workload failed verification while recording"
            );
            let recorded = RecordingHooks::finish(Arc::new(hooks));
            let file = std::fs::File::create(path).expect("create trace file");
            write_trace(&recorded, BufWriter::new(file)).expect("write trace");
            println!(
                "recorded {name} ({:?}): {} nodes, {} futures, {} accesses -> {path}",
                scale,
                recorded.dag.node_count(),
                recorded.dag.future_count(),
                recorded.log.len()
            );
        }
        Some("analyze") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let file = std::fs::File::open(path).expect("open trace file");
            let recorded = read_trace(BufReader::new(file)).expect("parse trace");
            let (work, span) = recorded.dag.work_span();
            println!(
                "trace: {} nodes, {} futures, {} edges, {} accesses",
                recorded.dag.node_count(),
                recorded.dag.future_count(),
                recorded.dag.edge_count(),
                recorded.log.len()
            );
            println!(
                "work = {work}, span = {span}, parallelism = {:.2}",
                work as f64 / span.max(1) as f64
            );
            match recorded.validate() {
                Ok(()) => println!("structured-future restrictions: OK"),
                Err(e) => println!("STRUCTURE VIOLATION: {e}"),
            }
            let races = recorded.races();
            if races.is_empty() {
                println!("races: none");
            } else {
                println!("races: {} pairs on {} locations", races.len(), {
                    let addrs: std::collections::BTreeSet<u64> =
                        races.iter().map(|r| r.addr).collect();
                    addrs.len()
                });
                for r in races.iter().take(10) {
                    println!("  addr {:#x}: {} || {}", r.addr, r.a, r.b);
                }
                if races.len() > 10 {
                    println!("  ... ({} more)", races.len() - 10);
                }
            }
        }
        _ => usage(),
    }
}
