//! The legacy mutex-sharded access history (PR 1's batched-shard design),
//! kept behind [`ShadowBackend::Sharded`](crate::ShadowBackend) as the
//! differential-testing baseline and the ablation reference point.
//!
//! The table is split into a power-of-two number of **address shards**,
//! each a hash map keyed by address under its own mutex. A shard — not a
//! location — is the locking unit, which gives the access path two modes:
//!
//! * **per-access** ([`ShardedHistory::locked`]): hash the address, take
//!   its shard lock, run the check/update closure. One lock acquisition
//!   per instrumented access — the cost structure the paper measures as
//!   the dominant `full`-configuration overhead (§4), counted by
//!   [`ShardedHistory::lock_ops`].
//! * **per-batch** ([`ShardedHistory::with_shard`] +
//!   [`ShardedHistory::shard_index`]): the caller groups a strand's
//!   buffered accesses by shard (sorting by [`shard_index`] also yields a
//!   canonical lock order), takes each touched shard's lock **once**, and
//!   processes every access that falls in it through the [`ShardView`].
//!   Lock acquisitions drop from one per access to one per
//!   (flush × touched shard).
//!
//! Both modes still serialize every access through a mutex; the paged
//! backend ([`crate::PagedHistory`]) removes that from the addressing path
//! entirely.
//!
//! [`shard_index`]: ShardedHistory::shard_index

use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{AddrHasher, AddrMap, LocEntry, ReaderPolicy, Readers, BLOCK_SHIFT, GRANULE_SHIFT};

struct Shard<P> {
    map: Mutex<AddrMap<LocEntry<P>>>,
}

/// Sharded access history keyed by address (the legacy backend).
pub struct ShardedHistory<P> {
    shards: Box<[Shard<P>]>,
    policy: ReaderPolicy,
    /// Shard-lock acquisitions. In per-access mode this equals the number
    /// of instrumented accesses — the dominant overhead source identified
    /// in §4; in batch mode it is one per (flush × touched shard).
    lock_ops: AtomicU64,
    mask: u64,
}

/// One shard of the table, locked once for a whole batch of accesses.
pub struct ShardView<'a, P> {
    map: MutexGuard<'a, AddrMap<LocEntry<P>>>,
    policy: ReaderPolicy,
}

impl<P: Copy> ShardView<'_, P> {
    /// The location's entry (created empty if absent). The address must
    /// hash to this shard — debug-checked by the caller's bookkeeping, not
    /// here (the map is per-shard, so a foreign address would just create
    /// an unreachable entry).
    pub fn entry(&mut self, addr: u64) -> &mut LocEntry<P> {
        let policy = self.policy;
        self.map.entry(addr).or_insert_with(|| LocEntry {
            writer: None,
            readers: Readers::new(policy),
            writer_seq: 0,
        })
    }
}

impl<P: Copy + Send> ShardedHistory<P> {
    /// Create a history with `shards` lock stripes (rounded up to a power
    /// of two).
    pub fn new(policy: ReaderPolicy, shards: usize) -> Self {
        let n = shards.next_power_of_two().max(1);
        let shards = (0..n)
            .map(|_| Shard {
                map: Mutex::new(AddrMap::default()),
            })
            .collect::<Vec<_>>();
        Self {
            shards: shards.into_boxed_slice(),
            policy,
            lock_ops: AtomicU64::new(0),
            mask: (n - 1) as u64,
        }
    }

    /// Default sizing: 4096 shards.
    pub fn with_policy(policy: ReaderPolicy) -> Self {
        Self::new(policy, 4096)
    }

    /// The reader-retention policy in force.
    pub fn policy(&self) -> ReaderPolicy {
        self.policy
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `addr` hashes to — by [`BLOCK_SHIFT`]-aligned block, so
    /// neighbouring addresses share a shard. Batch flushers sort buffered
    /// accesses by this index: equal indices share one lock acquisition,
    /// and ascending order is the canonical lock order (each shard is
    /// locked at most once per flush, so no deadlock is possible either
    /// way — the order just keeps the discipline auditable).
    #[inline]
    pub fn shard_index(&self, addr: u64) -> usize {
        let block = addr >> (GRANULE_SHIFT + BLOCK_SHIFT);
        let mut h = AddrHasher::default();
        std::hash::Hasher::write_u64(&mut h, block);
        (std::hash::Hasher::finish(&h) & self.mask) as usize
    }

    /// Take one shard's lock and run `f` on the [`ShardView`]: the
    /// batch-mode entry point — one `lock_ops` tick covers every entry the
    /// closure touches.
    #[inline]
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut ShardView<'_, P>) -> R) -> R {
        self.lock_ops.fetch_add(1, Ordering::Relaxed);
        let mut view = ShardView {
            map: self.shards[shard].map.lock(),
            policy: self.policy,
        };
        f(&mut view)
    }

    /// Run `f` with the location's entry locked (creating it if absent):
    /// the per-access critical section whose volume the paper identifies
    /// as the dominant `full`-config cost. One `lock_ops` tick per call.
    #[inline]
    pub fn locked<R>(&self, addr: u64, f: impl FnOnce(&mut LocEntry<P>) -> R) -> R {
        self.with_shard(self.shard_index(addr), |view| f(view.entry(addr)))
    }

    /// Total shard-lock acquisitions so far.
    pub fn lock_ops(&self) -> u64 {
        self.lock_ops.load(Ordering::Relaxed)
    }

    /// Number of tracked locations.
    pub fn locations(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// Maximum retained readers over all locations (the §3.5 bound says
    /// ≤ 2k under [`ReaderPolicy::PerFutureLR`]).
    pub fn max_retained_readers(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .values()
                    .map(|e| e.readers.len())
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Approximate heap bytes (table capacity + reader payloads).
    ///
    /// Sized by the maps' *capacity*, not their length: hash tables
    /// allocate buckets ahead of occupancy, and the pre-audit version
    /// (`len * entry`) under-reported by up to the load-factor headroom —
    /// the Fig. 5 accounting must charge what the allocator actually holds.
    /// Reader payloads were already capacity-based (the `PerFutureLR`
    /// triple vectors charge `capacity * size_of::<(u32, P, P)>`, growth
    /// slack included); the audit confirmed the undercount was the table
    /// term, not the triples.
    pub fn heap_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(u64, LocEntry<P>)>() + 8;
        self.shards
            .iter()
            .map(|s| {
                let m = s.map.lock();
                m.capacity() * entry + m.values().map(|e| e.readers.heap_bytes()).sum::<usize>()
            })
            .sum()
    }

    /// Visit every `(addr, entry)` pair (diagnostics / differential tests).
    pub fn for_each_entry(&self, mut f: impl FnMut(u64, &LocEntry<P>)) {
        for s in self.shards.iter() {
            let m = s.map.lock();
            for (&addr, e) in m.iter() {
                f(addr, e);
            }
        }
    }
}
