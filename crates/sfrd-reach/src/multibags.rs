//! **MultiBags** — the sequential structured-futures baseline (Utterback
//! et al., PPoPP 2019, [40] in the paper).
//!
//! MultiBags race-detects *while executing the program serially* in the
//! left-to-right depth-first order, which lets it replace order-maintenance
//! structures with SP-bags-style union-find: near-O(α) amortized per
//! construct, but inherently unparallelizable — exactly the trade-off the
//! paper's Fig. 4 measures (lowest T1 overhead, zero scalability).
//!
//! We implement it as the union-find specialization of the SF-Order query
//! structure (DESIGN.md §7): SP-bags over the pseudo-SP-dag answers the
//! `u ↠ v` cases of Algorithm 1, and the same `cp`/`gp` bitmaps (updated
//! without synchronization) answer the cross-future case.
//!
//! Classic SP-bags invariant (Feng–Leiserson), valid only mid-serial-DFS:
//! a previously executed access with element `e` is a serial ancestor of
//! the *currently executing* instruction iff `find(e)` is an **S-bag**;
//! it is logically parallel iff `find(e)` is a **P-bag**. Each task owns
//! one element; on task return the task's S-bag melds into the parent's
//! P-bag; `sync` melds the P-bag into the S-bag.
//!
//! The API is `&mut self` throughout and queries are only meaningful
//! against the current strand of the serial execution — the type system
//! plus the serial runtime enforce the paper's sequentiality requirement.

use std::sync::Arc;

use sfrd_dag::FutureId;

use crate::bitmap::{merge, with_future, FutureSet, SetRepr, SetStats};

/// A union-find element: one per task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BagElem(u32);

/// Bag polarity of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    S,
    P,
}

/// Union-find with per-root bag kind (path halving + union by rank).
#[derive(Debug, Default)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    kind: Vec<Kind>,
}

impl UnionFind {
    fn singleton(&mut self, kind: Kind) -> BagElem {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.kind.push(kind);
        BagElem(id)
    }

    fn find(&mut self, e: BagElem) -> u32 {
        let mut x = e.0;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Union the sets of `a` and `b`; the merged set gets kind `kind`.
    fn union(&mut self, a: BagElem, b: BagElem, kind: Kind) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            self.kind[ra as usize] = kind;
            return;
        }
        let root = if self.rank[ra as usize] < self.rank[rb as usize] {
            self.parent[ra as usize] = rb;
            rb
        } else {
            if self.rank[ra as usize] == self.rank[rb as usize] {
                self.rank[ra as usize] += 1;
            }
            self.parent[rb as usize] = ra;
            ra
        };
        self.kind[root as usize] = kind;
    }

    fn retag(&mut self, e: BagElem, kind: Kind) {
        let r = self.find(e);
        self.kind[r as usize] = kind;
    }

    fn kind_of(&mut self, e: BagElem) -> Kind {
        let r = self.find(e);
        self.kind[r as usize]
    }

    fn heap_bytes(&self) -> usize {
        self.parent.capacity() * 4 + self.rank.capacity() + self.kind.capacity()
    }
}

/// Per-task MultiBags state (an SP-bags "procedure frame").
#[derive(Debug)]
pub struct MbStrand {
    /// The task's own element (access-history identity of its strands).
    elem: BagElem,
    /// Representative of the task's P-bag, if non-empty.
    p_rep: Option<BagElem>,
    future: FutureId,
    cp: Arc<FutureSet>,
    gp: Arc<FutureSet>,
}

/// Access-history key for MultiBags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MbPos {
    /// Union-find element of the owning task.
    pub elem: BagElem,
    /// Owning future.
    pub future: FutureId,
}

impl MbStrand {
    /// Identity of the current strand.
    #[inline]
    pub fn pos(&self) -> MbPos {
        MbPos {
            elem: self.elem,
            future: self.future,
        }
    }

    /// Owning future id.
    #[inline]
    pub fn future(&self) -> FutureId {
        self.future
    }

    /// Current `gp` table (shared).
    pub fn gp(&self) -> &Arc<FutureSet> {
        &self.gp
    }
}

/// The MultiBags engine. Sequential only (`&mut self`).
pub struct MbReach {
    uf: UnionFind,
    next_future: u32,
    stats: SetStats,
}

impl MbReach {
    /// New engine with the default (adaptive) set representation; returns
    /// the root task's frame.
    pub fn new() -> (Self, MbStrand) {
        Self::with_repr(SetRepr::default())
    }

    /// New engine with an explicit `cp`/`gp` set-representation family.
    pub fn with_repr(repr: SetRepr) -> (Self, MbStrand) {
        Self::with_config(repr, crate::kernels::KernelKind::default())
    }

    /// New engine with an explicit set family and chunk-kernel selection.
    pub fn with_config(repr: SetRepr, kernels: crate::kernels::KernelKind) -> (Self, MbStrand) {
        let mut uf = UnionFind::default();
        let e0 = uf.singleton(Kind::S);
        let empty = Arc::new(FutureSet::empty_in(repr));
        let engine = Self {
            uf,
            next_future: 1,
            stats: SetStats::with_kernel(kernels),
        };
        let root = MbStrand {
            elem: e0,
            p_rep: None,
            future: FutureId::ROOT,
            cp: Arc::clone(&empty),
            gp: empty,
        };
        (engine, root)
    }

    /// `spawn`: new child frame with its own singleton S-bag. In the serial
    /// order the caller descends into the child immediately; the parent's
    /// element is unchanged (all strands of one task share its element).
    pub fn spawn(&mut self, parent: &mut MbStrand) -> MbStrand {
        let child = self.uf.singleton(Kind::S);
        MbStrand {
            elem: child,
            p_rep: None,
            future: parent.future,
            cp: Arc::clone(&parent.cp),
            gp: Arc::clone(&parent.gp),
        }
    }

    /// `create`: like spawn in the PSP view, plus the future bookkeeping.
    pub fn create(&mut self, parent: &mut MbStrand) -> MbStrand {
        let mut child = self.spawn(parent);
        child.future = FutureId(self.next_future);
        self.next_future += 1;
        child.cp = with_future(&parent.cp, parent.future, &self.stats);
        child
    }

    /// A child task (spawned or created) returned to `parent` in the serial
    /// order: its S-bag becomes (part of) the parent's P-bag.
    pub fn task_return(&mut self, parent: &mut MbStrand, child: &MbStrand) {
        debug_assert!(child.p_rep.is_none(), "child returned without task_end");
        match parent.p_rep {
            Some(p) => self.uf.union(p, child.elem, Kind::P),
            None => {
                self.uf.retag(child.elem, Kind::P);
                parent.p_rep = Some(child.elem);
            }
        }
    }

    /// `sync`: fold the P-bag into the S-bag. `gp` unions over joined
    /// children are done by the caller via [`MbReach::absorb_gp`] *before*
    /// the corresponding `task_return` (matching SP-bags, which forgets
    /// child identities here).
    pub fn sync(&mut self, s: &mut MbStrand) {
        if let Some(p) = s.p_rep.take() {
            self.uf.union(s.elem, p, Kind::S);
        }
    }

    /// Merge a joined child's `gp` into the continuation's.
    pub fn absorb_gp(&mut self, s: &mut MbStrand, child_gp: &Arc<FutureSet>) {
        s.gp = merge(&s.gp, child_gp, &self.stats);
    }

    /// `get` of a completed future: `gp(g) = gp(u) ∪ gp(last(G)) ∪ {G}`.
    pub fn get(&mut self, s: &mut MbStrand, done: &MbStrand) {
        let with_done = with_future(&done.gp, done.future, &self.stats);
        s.gp = merge(&s.gp, &with_done, &self.stats);
    }

    /// Implicit task-end sync.
    pub fn task_end(&mut self, s: &mut MbStrand) {
        self.sync(s);
    }

    /// Algorithm 1 with SP-bags answering the `u ↠ v` cases: does the
    /// strand recorded as `u` precede the **currently executing** strand
    /// `v`? Only valid mid-serial-execution for the current strand.
    pub fn precedes(&mut self, u: MbPos, v: &MbStrand) -> bool {
        if u.future == v.future {
            return self.uf.kind_of(u.elem) == Kind::S;
        }
        if v.cp.contains(u.future) && self.uf.kind_of(u.elem) == Kind::S {
            return true;
        }
        v.gp.contains(u.future)
    }

    /// Number of futures, root included.
    pub fn future_count(&self) -> u32 {
        self.next_future
    }

    /// Allocation statistics.
    pub fn set_stats(&self) -> &SetStats {
        &self.stats
    }

    /// Heap bytes of the union-find plus bitmap payloads.
    pub fn heap_bytes(&self) -> usize {
        self.uf.heap_bytes() + self.stats.snapshot().1 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serial DFS of: spawn c; (c runs, writes); continuation; sync.
    #[test]
    fn spawned_child_parallel_until_sync() {
        let (mut eng, mut root) = MbReach::new();
        let mut child = eng.spawn(&mut root);
        let child_pos = child.pos();
        eng.task_end(&mut child);
        eng.task_return(&mut root, &child);
        // Executing the continuation: the child is in a P-bag.
        assert!(
            !eng.precedes(child_pos, &root),
            "unsynced child ∥ continuation"
        );
        eng.sync(&mut root);
        assert!(eng.precedes(child_pos, &root), "sync serializes the child");
    }

    #[test]
    fn created_future_parallel_until_get() {
        let (mut eng, mut root) = MbReach::new();
        let mut fut = eng.create(&mut root);
        let fut_pos = fut.pos();
        eng.task_end(&mut fut);
        eng.task_return(&mut root, &fut);
        assert!(!eng.precedes(fut_pos, &root));
        eng.get(&mut root, &fut);
        assert!(
            eng.precedes(fut_pos, &root),
            "get serializes the future via gp"
        );
    }

    #[test]
    fn same_task_strands_always_serial() {
        let (mut eng, mut root) = MbReach::new();
        let first = root.pos();
        let mut child = eng.spawn(&mut root);
        // Inside the child: the parent's pre-spawn access is serial.
        assert!(eng.precedes(first, &child));
        eng.task_end(&mut child);
        eng.task_return(&mut root, &child);
        assert!(eng.precedes(first, &root));
        assert!(eng.precedes(root.pos(), &root), "strand ⪯ itself");
    }

    #[test]
    fn nested_spawn_grandchild_relations() {
        let (mut eng, mut root) = MbReach::new();
        let mut c = eng.spawn(&mut root);
        // Inside child: spawn grandchild.
        let mut d = eng.spawn(&mut c);
        let d_pos = d.pos();
        eng.task_end(&mut d);
        eng.task_return(&mut c, &d);
        // Executing child's continuation: d is parallel.
        assert!(!eng.precedes(d_pos, &c));
        eng.sync(&mut c);
        assert!(eng.precedes(d_pos, &c));
        eng.task_end(&mut c);
        eng.task_return(&mut root, &c);
        assert!(
            !eng.precedes(d_pos, &root),
            "whole child subtree ∥ continuation"
        );
        eng.sync(&mut root);
        assert!(eng.precedes(d_pos, &root));
    }

    /// DFS-ordered create: queries inside the future body see the create
    /// node as serial (cp + S-bag route).
    #[test]
    fn ancestor_future_case_uses_bags() {
        let (mut eng, mut root) = MbReach::new();
        let before = root.pos();
        let mut fut = eng.create(&mut root);
        // Serially we are now *inside* the future.
        assert!(
            eng.precedes(before, &fut),
            "create node ≺ future body (cp + S-bag)"
        );
        // Nested future: grandchild sees the root strand too.
        let grand = eng.create(&mut fut);
        assert!(eng.precedes(before, &grand));
        assert!(grand.cp.contains(FutureId::ROOT) && grand.cp.contains(fut.future()));
    }

    /// A spawned sibling that ran *before* the create is in the parent's
    /// P-bag while the future executes: parallel, even though cp matches.
    #[test]
    fn parallel_sibling_not_serialized_by_cp_route() {
        let (mut eng, mut root) = MbReach::new();
        let mut sib = eng.spawn(&mut root);
        let sib_pos = sib.pos();
        eng.task_end(&mut sib);
        eng.task_return(&mut root, &sib);
        // No sync: now create a future while sib is unsynced.
        let fut = eng.create(&mut root);
        assert!(
            !eng.precedes(sib_pos, &fut),
            "unsynced sibling ∥ future body"
        );
    }

    #[test]
    fn sibling_futures_via_gp() {
        let (mut eng, mut root) = MbReach::new();
        let mut a = eng.create(&mut root);
        let a_pos = a.pos();
        eng.task_end(&mut a);
        eng.task_return(&mut root, &a);
        eng.get(&mut root, &a);
        let b = eng.create(&mut root);
        assert!(eng.precedes(a_pos, &b));
        assert!(b.gp.contains(a.future()));
    }

    #[test]
    fn heap_and_counters() {
        let (mut eng, mut root) = MbReach::new();
        let mut f = eng.create(&mut root);
        eng.task_end(&mut f);
        eng.task_return(&mut root, &f);
        eng.get(&mut root, &f);
        assert!(eng.heap_bytes() > 0);
        assert_eq!(eng.future_count(), 2);
    }
}
