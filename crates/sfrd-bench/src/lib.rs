//! # sfrd-bench — the evaluation harness (Figures 3, 4, 5)
//!
//! Binaries regenerating the paper's evaluation artifacts:
//!
//! * `fig3_characteristics` — Fig. 3: input sizes and execution counters
//!   (#reads, #writes, #queries, #futures, #nodes) per benchmark;
//! * `fig4_times` — Fig. 4: base/reach/full execution times of MultiBags,
//!   F-Order and SF-Order on 1 and P workers, with overhead and
//!   scalability annotations (plus the dag parallelism `T1/T∞`, which is
//!   the honest scalability signal on core-starved CI boxes);
//! * `fig5_memory` — Fig. 5: reachability-maintenance memory of F-Order
//!   vs SF-Order.
//!
//! All binaries take `--scale small|medium|paper`, `--workers N` and
//! `--bench <name>` (repeatable). Criterion micro-benchmarks live under
//! `benches/`.

#![warn(missing_docs)]

mod json;

use std::sync::Arc;
use std::time::Duration;

use sfrd_core::{
    drive, DetectorKind, DriveConfig, DriveConfigBuilder, KernelKind, Mode, OmBackend, Outcome,
    RaceReport, RecordingHooks, SchedBackend, SetRepr, ShadowBackend, Workload,
};
use sfrd_runtime::run_sequential;
use sfrd_workloads::{make_bench, AnyBench, Scale, BENCH_NAMES};

pub use json::Json;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Input scale.
    pub scale: Scale,
    /// Parallel worker count (the paper's `P = 20`).
    pub workers: usize,
    /// Benchmarks to run (Fig. 3 order).
    pub benches: Vec<String>,
    /// Repetitions per timed cell (the paper averages five runs).
    pub reps: usize,
    /// Machine-readable output path (`--json`, default `BENCH_fig4.json`;
    /// override with `--json-out PATH`). `None` = human table only.
    pub json: Option<String>,
    /// Snapshot label recorded in the JSON trajectory (`--json-label`).
    pub json_label: Option<String>,
    /// Shadow-memory backend (`--shadow sharded|paged`; default paged).
    pub shadow: ShadowBackend,
    /// `cp`/`gp` set representation (`--set-repr dense|adaptive`; default
    /// adaptive).
    pub set_repr: SetRepr,
    /// Scheduler queue backend (`--sched lev|mutex`; default lev — the
    /// lock-free Chase-Lev deques; mutex is the `sched_deque` ablation
    /// baseline).
    pub sched: SchedBackend,
    /// 512-bit chunk-kernel dispatch (`--kernels scalar|auto`; default
    /// auto — SIMD when the CPU supports it; scalar is the
    /// `simd_kernels` ablation baseline).
    pub kernels: KernelKind,
    /// Order-maintenance backend (`--om list|depa`, alias `--om-backend`;
    /// default the shared two-level list).
    pub om_backend: OmBackend,
}

impl HarnessArgs {
    /// Parse `--scale`, `--workers`, `--bench` from `std::env::args`.
    /// Unknown flags abort with a usage message.
    pub fn parse() -> Self {
        let mut scale = Scale::Small;
        let mut workers = default_workers();
        let mut benches: Vec<String> = Vec::new();
        let mut reps = 1usize;
        let mut json = None;
        let mut json_label = None;
        // Backend flags route through the one shared parser so every
        // binary accepts the same spellings.
        let mut backend = DriveConfig::builder();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    scale = match args.next().as_deref() {
                        Some("small") => Scale::Small,
                        Some("medium") => Scale::Medium,
                        Some("paper") => Scale::Paper,
                        other => usage(&format!("bad --scale {other:?}")),
                    }
                }
                "--workers" => {
                    workers = args
                        .next()
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage("bad --workers"));
                }
                "--bench" => {
                    let name = args.next().unwrap_or_else(|| usage("missing bench name"));
                    if !BENCH_NAMES.contains(&name.as_str()) {
                        usage(&format!("unknown bench {name:?}"));
                    }
                    benches.push(name);
                }
                "--reps" => {
                    reps = args
                        .next()
                        .and_then(|w| w.parse().ok())
                        .filter(|&r| r >= 1)
                        .unwrap_or_else(|| usage("bad --reps"));
                }
                "--json" => {
                    json.get_or_insert_with(|| "BENCH_fig4.json".to_string());
                }
                "--json-out" => {
                    json = Some(
                        args.next()
                            .unwrap_or_else(|| usage("missing --json-out path")),
                    );
                }
                "--json-label" => {
                    json_label = Some(
                        args.next()
                            .unwrap_or_else(|| usage("missing --json-label name")),
                    );
                }
                "--help" | "-h" => usage(""),
                other => match backend.parse_backend_flag(other, &mut args) {
                    Ok(true) => {}
                    Ok(false) => usage(&format!("unknown flag {other:?}")),
                    Err(e) => usage(&e),
                },
            }
        }
        if benches.is_empty() {
            benches = BENCH_NAMES.iter().map(|s| s.to_string()).collect();
        }
        let b = backend.build();
        Self {
            scale,
            workers,
            benches,
            reps,
            json,
            json_label,
            shadow: b.shadow,
            set_repr: b.set_repr,
            sched: b.sched,
            kernels: b.kernels,
            om_backend: b.om_backend,
        }
    }

    /// A detector configuration honoring the harness's backend and
    /// set-representation selections.
    pub fn cfg(&self, kind: DetectorKind, mode: Mode, workers: usize) -> DriveConfig {
        DriveConfig::with(kind, mode, workers)
            .to_builder()
            .shadow(self.shadow)
            .set_repr(self.set_repr)
            .sched(self.sched)
            .kernels(self.kernels)
            .om_backend(self.om_backend)
            .build()
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bin> [--scale small|medium|paper] [--workers N] [--reps N] \
         [--bench mm|sort|sw|hw|ferret]... {} [--json] [--json-out PATH] \
         [--json-label NAME]",
        DriveConfigBuilder::backend_flag_usage()
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Default `P`: the machine's cores, capped at 8 (the harness is expected
/// to run on shared CI boxes).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
        .max(2)
}

/// Run benchmark `name` fresh under `cfg`, asserting the result verifies.
pub fn run_bench(name: &str, scale: Scale, cfg: DriveConfig) -> (Outcome, AnyBench) {
    let w = make_bench(name, scale, 0xBE7C);
    let out = drive(&w, cfg);
    assert!(
        w.verify_ok(),
        "{name} produced a wrong result under {cfg:?}"
    );
    if let Some(rep) = &out.report {
        assert_eq!(
            rep.total_races, 0,
            "{name} reported races under {cfg:?} — detector bug"
        );
    }
    (out, w)
}

/// Timing statistics over repeated runs.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Mean seconds.
    pub mean: f64,
    /// Sample standard deviation in seconds (0 for one rep).
    pub sd: f64,
}

impl Timing {
    /// Relative standard deviation, percent.
    pub fn rsd(&self) -> f64 {
        if self.mean > 0.0 {
            self.sd / self.mean * 100.0
        } else {
            0.0
        }
    }
}

/// One timed grid cell: the timing plus the *last* repetition's race
/// report (detector configs only; `None` for base runs).
pub struct TimedCell {
    /// Mean/sd over the repetitions.
    pub timing: Timing,
    /// Report of the final repetition (counter values are per-run, not
    /// accumulated across reps — each rep builds a fresh detector).
    pub report: Option<RaceReport>,
}

/// Run a cell `reps` times; returns mean/sd plus the last run's report
/// (each run re-verifies).
pub fn run_bench_cell(name: &str, scale: Scale, cfg: DriveConfig, reps: usize) -> TimedCell {
    let mut samples = Vec::with_capacity(reps.max(1));
    let mut report = None;
    for _ in 0..reps.max(1) {
        let (out, _) = run_bench(name, scale, cfg);
        samples.push(out.wall.as_secs_f64());
        report = out.report;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    TimedCell {
        timing: Timing {
            mean,
            sd: var.sqrt(),
        },
        report,
    }
}

/// Run a cell `reps` times; returns mean/sd (each run re-verifies).
pub fn run_bench_timed(name: &str, scale: Scale, cfg: DriveConfig, reps: usize) -> Timing {
    run_bench_cell(name, scale, cfg, reps).timing
}

/// The per-detector metrics snapshot as a JSON object (the perf-trajectory
/// payload of `BENCH_fig4.json`).
pub fn report_json(rep: &RaceReport) -> Json {
    Json::obj()
        .field("reads", rep.counts.reads)
        .field("writes", rep.counts.writes)
        .field("queries", rep.counts.queries)
        .field("reach_bytes", rep.reach_bytes)
        .field("history_bytes", rep.history_bytes)
        .field("lock_ops", rep.metrics.lock_ops)
        .field("batch_flushes", rep.metrics.batch_flushes)
        .field("batched_accesses", rep.metrics.batched_accesses)
        .field("filtered_accesses", rep.metrics.filtered_accesses)
        .field("seqlock_hits", rep.metrics.seqlock_hits)
        .field("bitmap_merges", rep.metrics.bitmap_merges)
        .field("om_fast_inserts", rep.metrics.om_fast_inserts)
        .field("om_group_locks", rep.metrics.om_group_locks)
        .field("om_global_escalations", rep.metrics.om_global_escalations)
        .field("om_query_retries", rep.metrics.om_query_retries)
        .field("depa_label_words", rep.metrics.depa_label_words)
        .field("depa_spills", rep.metrics.depa_spills)
        .field("depa_max_depth", rep.metrics.depa_max_depth)
        .field("shadow_fast_hits", rep.metrics.shadow_fast_hits)
        .field("shadow_cas_retries", rep.metrics.shadow_cas_retries)
        .field("page_allocs", rep.metrics.page_allocs)
        .field("set_bytes", rep.metrics.set_bytes)
        .field("set_allocs", rep.metrics.set_allocs)
        .field("set_tier_inline", rep.metrics.set_tier_inline)
        .field("set_tier_sparse", rep.metrics.set_tier_sparse)
        .field("set_tier_chunked", rep.metrics.set_tier_chunked)
        .field("set_tier_dense", rep.metrics.set_tier_dense)
        .field("set_chunks_shared", rep.metrics.set_chunks_shared)
        .field("set_chunks_copied", rep.metrics.set_chunks_copied)
        .field("set_lineage_hits", rep.metrics.set_lineage_hits)
        .field("sched_tasks_run", rep.metrics.sched_tasks_run)
        .field("sched_steals", rep.metrics.sched_steals)
        .field("sched_steal_retries", rep.metrics.sched_steal_retries)
        .field("sched_parks", rep.metrics.sched_parks)
        .field("sched_wakeups", rep.metrics.sched_wakeups)
        .field("kernel_simd_calls", rep.metrics.kernel_simd_calls)
        .field("kernel_scalar_calls", rep.metrics.kernel_scalar_calls)
        .field("arena_slabs", rep.metrics.arena_slabs)
        .field("prefetch_issued", rep.metrics.prefetch_issued)
        .field("srv_sessions_open", rep.metrics.srv_sessions_open)
        .field("srv_frames_in", rep.metrics.srv_frames_in)
        .field("srv_bytes_in", rep.metrics.srv_bytes_in)
        .field(
            "srv_backpressure_stalls",
            rep.metrics.srv_backpressure_stalls,
        )
}

/// One timed cell as a trajectory-row JSON object (shape shared by
/// `fig4_times` and `k_scaling`).
pub fn cell_json(config: &str, workers: usize, cell: &TimedCell) -> Json {
    let metrics = match &cell.report {
        Some(rep) => report_json(rep),
        None => Json::Null,
    };
    Json::obj()
        .field("config", config)
        .field("workers", workers)
        .field("mean_s", cell.timing.mean)
        .field("sd_s", cell.timing.sd)
        .field("metrics", metrics)
}

/// Append `snap` to the schema-2 perf trajectory at `path`, creating the
/// document if absent and migrating a legacy schema-1 file (a single bare
/// snapshot object) by wrapping it as the first snapshot. There is no
/// vendored JSON parser, so this splices textually — sound because the
/// renderer's layout is fixed (two-space indent, `]\n}\n` tail).
pub fn append_snapshot(path: &str, snap: Json) {
    const TAIL: &str = "\n  ]\n}\n";
    let reindent = |text: &str| -> String {
        text.trim_end()
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n")
            .trim_start()
            .to_string()
    };
    let fresh = |snapshots: Vec<String>| {
        let body: Vec<String> = snapshots.iter().map(|s| format!("    {s}")).collect();
        format!(
            "{{\n  \"schema\": 2,\n  \"figure\": \"fig4\",\n  \"snapshots\": [\n{}{TAIL}",
            body.join(",\n")
        )
    };
    let rendered = reindent(&snap.render());
    let doc = match std::fs::read_to_string(path) {
        Err(_) => fresh(vec![rendered]),
        Ok(existing) if existing.contains("\"schema\": 2") => {
            let body = existing.strip_suffix(TAIL).unwrap_or_else(|| {
                panic!("{path}: schema-2 trajectory has an unexpected layout; refusing to splice")
            });
            format!("{body},\n    {rendered}{TAIL}")
        }
        Ok(legacy) => {
            // Schema-1: one bare snapshot object — keep it as history.
            fresh(vec![reindent(&legacy), rendered])
        }
    };
    std::fs::write(path, doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Work and span of the recorded dag (node weights = instrumented
/// accesses), and the derived parallelism `T1/T∞`. This is measured by a
/// sequential recording run, so it is schedule-independent.
pub fn work_span(name: &str, scale: Scale) -> (u64, u64) {
    let hooks = RecordingHooks::new();
    let w = make_bench(name, scale, 0xBE7C);
    run_sequential(&hooks, |ctx| w.run(ctx));
    let recorded = RecordingHooks::finish(Arc::new(hooks));
    recorded.dag.work_span()
}

/// Format a count the way the paper does (`1.72 × 10^10` → `1.72e10`).
pub fn sci(x: u64) -> String {
    if x < 100_000 {
        return x.to_string();
    }
    let mut mant = x as f64;
    let mut exp = 0u32;
    while mant >= 10.0 {
        mant /= 10.0;
        exp += 1;
    }
    format!("{mant:.2}e{exp}")
}

/// Seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// `x.yz×` overhead annotation.
pub fn times(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// A minimal fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        let mut t = Table {
            widths: header.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.row(header.iter().map(|s| s.to_string()).collect());
        t
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.widths.len());
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Render with column alignment and a rule under the header.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:<width$}", width = w))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if i == 0 {
                let rule: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
                out.push_str(&rule.join("  "));
                out.push('\n');
            }
        }
        out
    }
}

/// The detector/mode grid of Fig. 4, in presentation order.
pub fn fig4_grid() -> [(&'static str, DetectorKind, Mode); 6] {
    [
        ("MultiBags/reach", DetectorKind::MultiBags, Mode::Reach),
        ("MultiBags/full", DetectorKind::MultiBags, Mode::Full),
        ("F-Order/reach", DetectorKind::FOrder, Mode::Reach),
        ("F-Order/full", DetectorKind::FOrder, Mode::Full),
        ("SF-Order/reach", DetectorKind::SfOrder, Mode::Reach),
        ("SF-Order/full", DetectorKind::SfOrder, Mode::Full),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0), "0");
        assert_eq!(sci(99_999), "99999");
        assert_eq!(sci(17_200_000_000), "1.72e10");
        assert_eq!(sci(132_000_000), "1.32e8");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["bench", "reads"]);
        t.row(vec!["mm".into(), "1.72e10".into()]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.contains("-----"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn work_span_is_positive_and_parallel() {
        let (work, span) = work_span("sw", Scale::Small);
        assert!(
            work > span,
            "sw must have parallelism: T1={work} Tinf={span}"
        );
    }

    #[test]
    fn run_bench_smoke() {
        let (out, w) = run_bench("sort", Scale::Small, DriveConfig::base(2));
        assert!(out.report.is_none());
        assert_eq!(w.name(), "sort");
    }
}
