//! `sfrd-serve`: a multi-session determinacy-race detection server over
//! binary strand-event journals.
//!
//! One framed TCP connection carries one detection session. The client
//! opens with a `DETECT sf|f|mb\n` handshake line, then streams a
//! [`sfrd-trace`](sfrd_trace) journal verbatim — header and
//! length-prefixed frames. The server replays the strand-event stream
//! into a private per-session detector and answers with a single
//! `OK ...`/`ERR ...` line carrying the session's race verdict.
//!
//! Concurrency model (no async, no new dependencies):
//!
//! - a **thread-per-connection reader** parses the handshake and frames
//!   off the socket, pushing complete frame payloads into the session's
//!   **bounded ingestion queue**;
//! - a **shared worker pool** built on the in-crate Chase-Lev deques and
//!   MPMC injector drains sessions, decodes frames, and feeds the
//!   per-session engine;
//! - when a queue is full, the *connection reader* blocks (explicit
//!   backpressure counted in `backpressure_stalls`) — a slow consumer
//!   stalls only its own connection, never a pool worker.
//!
//! Counters (`sessions_open`, `frames_in`, `bytes_in`,
//! `backpressure_stalls`) feed the existing metrics path: each response
//! embeds them, and each session's [`RaceReport`](sfrd_core::RaceReport)
//! carries them in the `srv_*` metrics fields.

#![warn(missing_docs)]

mod metrics;
mod pool;
mod server;
mod session;

pub use metrics::{MetricsView, ServerMetrics};
pub use server::{submit_journal, Server, ServerConfig};
pub use session::SessionDetector;
