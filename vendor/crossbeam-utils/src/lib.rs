//! Offline stand-in for `crossbeam-utils` (see vendor/README.md).

/// Atomic cells for `Copy` data.
pub mod atomic {
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// A lock-based atomic cell for `Copy` types.
    ///
    /// The real `AtomicCell` uses native atomics for small types and a
    /// global spinlock table otherwise; this stand-in uses one inline
    /// spinlock per cell, which preserves the property the workspace
    /// relies on: racy *program-level* accesses stay data-race-free at
    /// the Rust/LLVM level.
    #[derive(Debug, Default)]
    pub struct AtomicCell<T> {
        busy: AtomicBool,
        value: UnsafeCell<T>,
    }

    // SAFETY: all access to `value` is serialized through the `busy`
    // spinlock, so the cell is as thread-safe as a Mutex<T>.
    unsafe impl<T: Send> Send for AtomicCell<T> {}
    unsafe impl<T: Send> Sync for AtomicCell<T> {}

    impl<T> AtomicCell<T> {
        /// Create a cell holding `value`.
        pub const fn new(value: T) -> Self {
            Self {
                busy: AtomicBool::new(false),
                value: UnsafeCell::new(value),
            }
        }

        #[inline]
        fn acquire(&self) {
            while self
                .busy
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
            }
        }

        #[inline]
        fn release(&self) {
            self.busy.store(false, Ordering::Release);
        }
    }

    impl<T: Copy> AtomicCell<T> {
        /// Atomically load the value.
        #[inline]
        pub fn load(&self) -> T {
            self.acquire();
            // SAFETY: the spinlock is held.
            let v = unsafe { *self.value.get() };
            self.release();
            v
        }

        /// Atomically store `value`.
        #[inline]
        pub fn store(&self, value: T) {
            self.acquire();
            // SAFETY: the spinlock is held.
            unsafe { *self.value.get() = value };
            self.release();
        }

        /// Atomically swap in `value`, returning the previous value.
        #[inline]
        pub fn swap(&self, value: T) -> T {
            self.acquire();
            // SAFETY: the spinlock is held.
            let old = unsafe { std::mem::replace(&mut *self.value.get(), value) };
            self.release();
            old
        }
    }
}

/// Pads a value to a cache line to avoid false sharing.
#[derive(Debug, Default, Clone, Copy)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::AtomicCell;
    use std::sync::Arc;

    #[test]
    fn concurrent_load_store() {
        let c = Arc::new(AtomicCell::new(0u64));
        let mut handles = vec![];
        for t in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    c.store(t * 1_000_000 + i);
                    let _ = c.load();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = c.load();
        assert!(v % 1_000_000 == 9_999);
    }
}
