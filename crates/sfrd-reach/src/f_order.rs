//! **F-Order** reachability — the general-futures baseline (Xu et al.,
//! PPoPP 2020, [43] in the paper).
//!
//! F-Order cannot exploit the structured-future properties, so instead of
//! SF-Order's one-bit-per-future `gp`/`cp` bitmaps it keeps, per strand, a
//! *hash table of non-SP ancestor operation nodes*: every create node and
//! put node `w` such that the non-SP edge leaving `w` lies on a path to the
//! strand. A query `u ≺ v` for `u ∈ F` then checks
//!
//! * `u ↠SP v` when `u` and `v` share a future (per-future SP order), or
//! * whether some recorded op node `w ∈ nsp(v) ∩ F` has `u ⪯SP w` — the
//!   first non-SP departure point of any path from `u` must be such a `w`.
//!
//! Tables store an SP-*maximal antichain* per future (dominated op nodes
//! are pruned), which is how the real F-Order keeps per-future entry counts
//! near `k̂`. This is exactly the cost structure the paper contrasts with:
//! hash-table allocation and O(k)-entry merges per create/get/divergent
//! sync, versus SF-Order's word-wise bitmap operations.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

use sfrd_dag::FutureId;
use sfrd_om::OmBackend;

use crate::arena::NodeArena;
use crate::bitmap::SetStats;
use crate::hash::FxHashMap;
use crate::sp_order::{SpOrder, SpPos, SpTask, StrandPos};

/// Per-future antichain of non-SP departure points (create/put positions).
type NspTable = FxHashMap<FutureId, Vec<SpPos>>;

/// Per-task F-Order state.
#[derive(Debug)]
pub struct FoStrand {
    sp: SpTask,
    future: FutureId,
    nsp: Arc<NspTable>,
}

impl FoStrand {
    /// Identity of the current strand for the access history.
    #[inline]
    pub fn pos(&self) -> StrandPos {
        StrandPos {
            sp: self.sp.pos(),
            future: self.future,
        }
    }

    /// Owning future id.
    #[inline]
    pub fn future(&self) -> FutureId {
        self.future
    }

    /// Entries currently reachable from this strand's table.
    pub fn nsp_len(&self) -> usize {
        self.nsp.values().map(Vec::len).sum()
    }
}

/// Per-future state in the engine's slab arena: the memoized
/// "done table" (`nsp(last(G)) + put node`) the first get publishes, so
/// fan-in gets of one future clone the table once, not once per getter.
/// Sound for the same reason as SF-Order's memoization: `done.nsp` is
/// frozen once the future completed, which the runtime orders before
/// every get.
#[derive(Debug, Default)]
struct FoNode {
    done: OnceLock<Arc<NspTable>>,
}

/// The F-Order reachability engine.
pub struct FoReach {
    sp: SpOrder,
    next_future: AtomicU32,
    stats: SetStats,
    nodes: NodeArena<FoNode>,
}

/// Rough heap footprint of one table (capacity-insensitive estimate used
/// for the Fig. 5 comparison).
fn table_bytes(t: &NspTable) -> usize {
    let entry = std::mem::size_of::<(FutureId, Vec<SpPos>)>() + 8;
    let pos = std::mem::size_of::<SpPos>();
    std::mem::size_of::<NspTable>()
        + t.len() * entry
        + t.values().map(|v| v.len() * pos).sum::<usize>()
}

impl FoReach {
    /// New engine on the default order-maintenance backend; returns the
    /// root task's strand.
    pub fn new() -> (Self, FoStrand) {
        Self::with_backend(OmBackend::default())
    }

    /// New engine whose SP orders run on `om_backend`.
    pub fn with_backend(om_backend: OmBackend) -> (Self, FoStrand) {
        let (sp, task) = SpOrder::with_backend(om_backend);
        let engine = Self {
            sp,
            next_future: AtomicU32::new(1),
            stats: SetStats::default(),
            nodes: NodeArena::new(),
        };
        engine.nodes.set(FutureId::ROOT.0, FoNode::default());
        let root = FoStrand {
            sp: task,
            future: FutureId::ROOT,
            nsp: Arc::new(NspTable::default()),
        };
        (engine, root)
    }

    /// The arena node of future `f` (published at create — see the
    /// `arena` module docs for why it is always visible here).
    #[inline]
    fn node(&self, f: FutureId) -> &FoNode {
        self.nodes
            .get(f.0)
            .expect("future node published before use")
    }

    /// Insert op node `(f, w)` into `table` keeping the per-future
    /// antichain SP-maximal.
    fn insert_op(&self, table: &mut NspTable, f: FutureId, w: SpPos) {
        let ops = table.entry(f).or_default();
        // Dominated by an existing entry?
        if ops.iter().any(|&p| self.sp.precedes_eq(w, p)) {
            return;
        }
        // Remove entries the new op dominates.
        ops.retain(|&p| !self.sp.precedes_eq(p, w));
        ops.push(w);
    }

    /// `spawn`: child shares the table.
    pub fn spawn(&self, parent: &mut FoStrand) -> FoStrand {
        let child_sp = self.sp.fork(&mut parent.sp);
        FoStrand {
            sp: child_sp,
            future: parent.future,
            nsp: Arc::clone(&parent.nsp),
        }
    }

    /// `create`: the child's table gains the create node as a departure
    /// point — a fresh table allocation (O(k) copy), the cost SF-Order's
    /// `cp` bitmaps avoid.
    pub fn create(&self, parent: &mut FoStrand) -> FoStrand {
        let create_pos = parent.sp.pos();
        let parent_future = parent.future;
        let child_sp = self.sp.fork(&mut parent.sp);
        let fid = FutureId(self.next_future.fetch_add(1, Ordering::Relaxed));
        self.nodes.set(fid.0, FoNode::default());
        let mut table = (*parent.nsp).clone();
        self.insert_op(&mut table, parent_future, create_pos);
        self.note_alloc(&table);
        FoStrand {
            sp: child_sp,
            future: fid,
            nsp: Arc::new(table),
        }
    }

    /// `sync`: merge children's tables into the continuation, sharing
    /// pointers when one side covers the other.
    pub fn sync<'a>(&self, s: &mut FoStrand, children: impl IntoIterator<Item = &'a FoStrand>) {
        self.sp.sync(&mut s.sp);
        for c in children {
            s.nsp = self.merge_tables(&s.nsp, &c.nsp);
        }
    }

    /// `get`: absorb the put side's table plus the put node itself. The
    /// "done table" depends only on the completed future, so the first
    /// get memoizes it in the future's arena node.
    pub fn get(&self, s: &mut FoStrand, done: &FoStrand) {
        let with_put = self.node(done.future).done.get_or_init(|| {
            let mut t = (*done.nsp).clone();
            self.insert_op(&mut t, done.future, done.pos().sp);
            self.note_alloc(&t);
            Arc::new(t)
        });
        s.nsp = self.merge_tables(&s.nsp, with_put);
    }

    /// Implicit task-end sync.
    pub fn task_end(&self, s: &mut FoStrand) {
        self.sp.sync(&mut s.sp);
    }

    /// Does the strand recorded as `u` precede the current strand `v`
    /// (reflexively)?
    pub fn precedes(&self, u: StrandPos, v: &FoStrand) -> bool {
        self.precedes_pos(u, v.pos(), &v.nsp)
    }

    fn precedes_pos(&self, u: StrandPos, v: StrandPos, v_nsp: &NspTable) -> bool {
        if u.future == v.future && self.sp.precedes_eq(u.sp, v.sp) {
            return true;
        }
        match v_nsp.get(&u.future) {
            Some(ops) => ops.iter().any(|&w| self.sp.precedes_eq(u.sp, w)),
            None => false,
        }
    }

    fn merge_tables(&self, a: &Arc<NspTable>, b: &Arc<NspTable>) -> Arc<NspTable> {
        if Arc::ptr_eq(a, b) || table_subset(b, a) {
            return Arc::clone(a);
        }
        if table_subset(a, b) {
            return Arc::clone(b);
        }
        self.stats.merges.fetch_add(1, Ordering::Relaxed);
        let mut out = (**a).clone();
        for (&f, ops) in b.iter() {
            for &w in ops {
                self.insert_op(&mut out, f, w);
            }
        }
        self.note_alloc(&out);
        Arc::new(out)
    }

    fn note_alloc(&self, t: &NspTable) {
        self.stats.note_alloc_bytes(table_bytes(t) as u64);
    }

    /// The underlying order structure (for access-history comparisons).
    pub fn sp_order(&self) -> &SpOrder {
        &self.sp
    }

    /// Number of futures created so far, root included.
    pub fn future_count(&self) -> u32 {
        self.next_future.load(Ordering::Relaxed)
    }

    /// Allocation statistics (Fig. 5).
    pub fn set_stats(&self) -> &SetStats {
        &self.stats
    }

    /// Slabs bump-allocated in the per-future node arena.
    pub fn arena_slabs(&self) -> u64 {
        self.nodes.slabs_allocated()
    }

    /// Heap bytes: OM lists + cumulative table payloads + arena slabs.
    pub fn heap_bytes(&self) -> usize {
        self.sp.heap_bytes() + self.stats.snapshot().1 as usize + self.nodes.heap_bytes()
    }
}

/// `a ⊆ b` by entry containment.
fn table_subset(a: &NspTable, b: &NspTable) -> bool {
    a.iter().all(|(f, ops)| {
        b.get(f)
            .is_some_and(|bops| ops.iter().all(|w| bops.contains(w)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_orders_strands() {
        let (eng, mut root) = FoReach::new();
        let mut fut = eng.create(&mut root);
        let inner = eng.spawn(&mut fut);
        eng.sync(&mut fut, [&inner]);
        eng.task_end(&mut fut);
        let put = fut.pos();
        assert!(
            !eng.precedes(put, &root),
            "future ∥ continuation before get"
        );
        eng.get(&mut root, &fut);
        assert!(eng.precedes(put, &root));
        assert!(eng.precedes(inner.pos(), &root));
    }

    #[test]
    fn create_node_precedes_future_contents() {
        let (eng, mut root) = FoReach::new();
        let before = root.pos();
        let fut = eng.create(&mut root);
        let after = root.pos();
        assert!(eng.precedes(before, &fut), "create node ≺ future body");
        assert!(!eng.precedes(after, &fut), "continuation ∥ future body");
    }

    #[test]
    fn sibling_futures_via_get_chain() {
        let (eng, mut root) = FoReach::new();
        let mut a = eng.create(&mut root);
        eng.task_end(&mut a);
        let a_pos = a.pos();
        eng.get(&mut root, &a);
        let b = eng.create(&mut root);
        assert!(eng.precedes(a_pos, &b));
        let mut c = eng.create(&mut root);
        eng.task_end(&mut c);
        assert!(
            !eng.precedes(c.pos(), &b),
            "siblings without get stay parallel"
        );
    }

    #[test]
    fn antichain_prunes_dominated_ops() {
        let (eng, mut root) = FoReach::new();
        // Two creates in series: the second create node dominates the first?
        // No — both are departure points for different futures, but both
        // entries live under the ROOT future key; the later create node
        // dominates the earlier one (serial), so one entry remains.
        let mut a = eng.create(&mut root);
        eng.task_end(&mut a);
        eng.get(&mut root, &a);
        let b = eng.create(&mut root);
        let root_ops = b.nsp.get(&FutureId::ROOT).unwrap();
        assert_eq!(root_ops.len(), 1, "dominated create node must be pruned");
    }

    #[test]
    fn table_growth_is_counted() {
        let (eng, mut root) = FoReach::new();
        let mut f = eng.create(&mut root);
        eng.task_end(&mut f);
        eng.get(&mut root, &f);
        let (allocs, bytes, _) = eng.set_stats().snapshot();
        assert!(allocs >= 2);
        assert!(bytes > 0);
        assert!(eng.heap_bytes() > 0);
    }
}
