/root/repo/target/release/deps/sfrd_runtime-31ca1bbdbd5e4a81.d: crates/sfrd-runtime/src/lib.rs crates/sfrd-runtime/src/hooks.rs crates/sfrd-runtime/src/parallel.rs crates/sfrd-runtime/src/sequential.rs

/root/repo/target/release/deps/libsfrd_runtime-31ca1bbdbd5e4a81.rlib: crates/sfrd-runtime/src/lib.rs crates/sfrd-runtime/src/hooks.rs crates/sfrd-runtime/src/parallel.rs crates/sfrd-runtime/src/sequential.rs

/root/repo/target/release/deps/libsfrd_runtime-31ca1bbdbd5e4a81.rmeta: crates/sfrd-runtime/src/lib.rs crates/sfrd-runtime/src/hooks.rs crates/sfrd-runtime/src/parallel.rs crates/sfrd-runtime/src/sequential.rs

crates/sfrd-runtime/src/lib.rs:
crates/sfrd-runtime/src/hooks.rs:
crates/sfrd-runtime/src/parallel.rs:
crates/sfrd-runtime/src/sequential.rs:
