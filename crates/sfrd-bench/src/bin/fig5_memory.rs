//! Regenerates **Figure 5**: memory used by reachability maintenance,
//! F-Order vs SF-Order (the paper reports GB at full scale; scaled-down
//! inputs land in KB/MB — the *ratio* is the reproduced claim: SF-Order's
//! bitmap `gp`/`cp` tables are a small percentage of F-Order's per-node
//! hash tables).
//!
//! A second table reports the **access-history** footprint (Full mode,
//! SF-Order) on both shadow backends. The accounting is capacity-based
//! on both sides (hash-table capacity × entry size for sharded; page
//! directory + arena slabs + fallback for paged), so the paged table's
//! direct-mapped overcommit is charged honestly against the hash maps.

use sfrd_bench::{run_bench, HarnessArgs, Table};
use sfrd_core::{DetectorKind, DriveConfig, Mode, ShadowBackend};

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB", b as f64 / 1024.0)
    }
}

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "# Figure 5: reachability-maintenance memory, F-Order vs SF-Order (scale: {:?})",
        args.scale
    );
    let mut t = Table::new(&["bench", "F-Order", "SF-Order", "SF/F ratio"]);
    let mut total_ratio = 0.0;
    let mut rows = 0usize;
    for name in &args.benches {
        let (fo, _) = run_bench(
            name,
            args.scale,
            DriveConfig::with(DetectorKind::FOrder, Mode::Reach, 1),
        );
        let (sf, _) = run_bench(
            name,
            args.scale,
            DriveConfig::with(DetectorKind::SfOrder, Mode::Reach, 1),
        );
        let fb = fo.report.unwrap().reach_bytes;
        let sb = sf.report.unwrap().reach_bytes;
        // Both engines share the SP-order OM lists; the differentiated part
        // is the gp/cp payloads vs nsp hash tables, which dominate at scale.
        let ratio = sb as f64 / fb.max(1) as f64;
        total_ratio += ratio;
        rows += 1;
        t.row(vec![
            name.clone(),
            fmt_bytes(fb),
            fmt_bytes(sb),
            format!("{:.1}%", ratio * 100.0),
        ]);
    }
    print!("{}", t.render());
    if rows > 0 {
        println!(
            "average SF-Order/F-Order memory: {:.1}%",
            total_ratio / rows as f64 * 100.0
        );
        println!("(paper: 1.29% of F-Order's usage on average, Fig. 5)");
    }

    println!();
    println!("# Access-history memory (SF-Order, full detection): sharded vs paged shadow");
    let mut h = Table::new(&["bench", "sharded", "paged", "paged/sharded"]);
    for name in &args.benches {
        let mut bytes = [0usize; 2];
        for (i, backend) in [ShadowBackend::Sharded, ShadowBackend::Paged]
            .into_iter()
            .enumerate()
        {
            let (out, _) = run_bench(
                name,
                args.scale,
                DriveConfig::with(DetectorKind::SfOrder, Mode::Full, 1)
                    .to_builder()
                    .shadow(backend)
                    .build(),
            );
            bytes[i] = out.report.unwrap().history_bytes;
        }
        h.row(vec![
            name.clone(),
            fmt_bytes(bytes[0]),
            fmt_bytes(bytes[1]),
            format!("{:.2}x", bytes[1] as f64 / bytes[0].max(1) as f64),
        ]);
    }
    print!("{}", h.render());
}
