/root/repo/target/release/deps/k_scaling-ba604c1776411f08.d: crates/sfrd-bench/src/bin/k_scaling.rs Cargo.toml

/root/repo/target/release/deps/libk_scaling-ba604c1776411f08.rmeta: crates/sfrd-bench/src/bin/k_scaling.rs Cargo.toml

crates/sfrd-bench/src/bin/k_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
