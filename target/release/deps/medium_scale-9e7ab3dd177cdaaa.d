/root/repo/target/release/deps/medium_scale-9e7ab3dd177cdaaa.d: crates/sfrd-workloads/tests/medium_scale.rs Cargo.toml

/root/repo/target/release/deps/libmedium_scale-9e7ab3dd177cdaaa.rmeta: crates/sfrd-workloads/tests/medium_scale.rs Cargo.toml

crates/sfrd-workloads/tests/medium_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
