//! Threaded stress tests for the decentralized (group-local) OM insert
//! protocol: concurrent inserters + concurrent lock-free queriers, with
//! forced group splits and forced group-label respreads, validated against
//! a total-order oracle rebuilt from the final list.
//!
//! Run in release mode (CI does): debug-mode atomics make the seqlock
//! windows so long that the schedules stop resembling production.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sfrd_om::{OmHandle, OmList};

/// Rank oracle: handle → position in the list's true total order, read
/// out *after* all writers joined. `order()` answers must agree with rank
/// comparison for every pair.
fn rank_oracle(list: &OmList) -> BTreeMap<usize, usize> {
    list.iter_order()
        .into_iter()
        .enumerate()
        .map(|(rank, h)| (h.index(), rank))
        .collect()
}

fn assert_order_matches_oracle(
    list: &OmList,
    handles: &[OmHandle],
    oracle: &BTreeMap<usize, usize>,
) {
    let n = handles.len();
    let step = (n / 64).max(1);
    for i in (0..n).step_by(step) {
        for j in (0..n).step_by(step) {
            let a = handles[i];
            let b = handles[j];
            let expect = oracle[&a.index()].cmp(&oracle[&b.index()]);
            assert_eq!(
                list.order(a, b),
                expect,
                "order({:?}, {:?}) disagrees with the rank oracle",
                a,
                b
            );
        }
    }
}

/// N inserter threads append to disjoint anchor chains while M query
/// threads verify a fixed chain; afterwards every thread's chain must be
/// contiguous in rank space between its anchors and all pairwise orders
/// must match the oracle.
#[test]
fn concurrent_inserters_match_rank_oracle() {
    const WRITERS: usize = 4;
    const READERS: usize = 2;
    const PER: usize = 8_000;

    let (list, base) = OmList::new();
    let list = Arc::new(list);
    // Anchors: base < a0 < a1 < a2 < a3, built serially.
    let mut anchors = Vec::with_capacity(WRITERS);
    let mut last = base;
    for _ in 0..WRITERS {
        last = list.insert_after(last);
        anchors.push(last);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            let chain: Vec<OmHandle> = std::iter::once(base).chain(anchors.clone()).collect();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for w in chain.windows(2) {
                        assert!(list.precedes(w[0], w[1]), "anchor order violated");
                        assert!(!list.precedes(w[1], w[0]));
                    }
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let list = Arc::clone(&list);
            let anchor = anchors[w];
            std::thread::spawn(move || {
                let mut chain = vec![anchor];
                let mut cur = anchor;
                for i in 0..PER {
                    // Mix single inserts with combined runs, like
                    // SpOrder::fork does.
                    match i % 3 {
                        0 => {
                            cur = list.insert_after(cur);
                            chain.push(cur);
                        }
                        1 => {
                            let [a, b] = list.insert_n_after::<2>(cur);
                            chain.push(a);
                            chain.push(b);
                            cur = b;
                        }
                        _ => {
                            let [a, b, c] = list.insert_n_after::<3>(cur);
                            chain.push(a);
                            chain.push(b);
                            chain.push(c);
                            cur = c;
                        }
                    }
                }
                chain
            })
        })
        .collect();

    let chains: Vec<Vec<OmHandle>> = writers.into_iter().map(|t| t.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    let oracle = rank_oracle(&list);
    assert_eq!(oracle.len(), list.len(), "iter_order must cover every item");

    // Each writer appended after its own tail, so its chain is contiguous
    // and strictly between its anchor and the next writer's anchor.
    for (w, chain) in chains.iter().enumerate() {
        let ranks: Vec<usize> = chain.iter().map(|h| oracle[&h.index()]).collect();
        for pair in ranks.windows(2) {
            assert!(pair[0] < pair[1], "writer {w} chain out of order");
        }
        if w + 1 < chains.len() {
            let next_anchor_rank = oracle[&anchors[w + 1].index()];
            assert!(
                *ranks.last().unwrap() < next_anchor_rank,
                "writer {w} leaked past the next anchor"
            );
        }
    }

    // Pairwise order queries agree with the oracle across all chains.
    let sample: Vec<OmHandle> = chains
        .iter()
        .flat_map(|c| c.iter().step_by(97).copied())
        .collect();
    assert_order_matches_oracle(&list, &sample, &oracle);

    let stats = list.stats();
    assert!(stats.splits > 0, "32k inserts must split groups: {stats:?}");
    assert!(
        stats.fast_inserts > stats.global_escalations,
        "fast path must dominate: {stats:?}"
    );
    assert!(
        stats.group_locks >= stats.fast_inserts,
        "every fast insert holds a group lock: {stats:?}"
    );
}

/// All writers hammer the SAME position (right after the base element):
/// maximal group-lock contention, geometric label-gap exhaustion, forced
/// splits of the head group, and — because each head split halves the
/// group-label gap — forced full respreads. Query threads must never
/// observe the verification chain out of order.
#[test]
fn head_hammer_forces_splits_and_respreads_under_queries() {
    const WRITERS: usize = 4;
    const READERS: usize = 2;
    const PER: usize = 8_000;

    let (list, base) = OmList::new();
    let list = Arc::new(list);
    let mut chain = vec![base];
    let mut last = base;
    for _ in 0..12 {
        last = list.insert_after(last);
        chain.push(last);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            let chain = chain.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for w in chain.windows(2) {
                        assert!(list.precedes(w[0], w[1]));
                        assert!(!list.precedes(w[1], w[0]));
                    }
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let list = Arc::clone(&list);
            std::thread::spawn(move || {
                for _ in 0..PER {
                    list.insert_after(base);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    assert_eq!(list.len(), 1 + 12 + WRITERS * PER);
    let stats = list.stats();
    assert!(stats.splits > 0, "head hammering must split: {stats:?}");
    assert!(
        stats.respreads > 0,
        "repeated head splits must exhaust group-label gaps: {stats:?}"
    );
    // (item-level `relabels` may legitimately stay 0 here: splits respace
    // the head group's labels every ~GROUP_MAX/2 inserts, well before 63
    // geometric halvings can exhaust a fresh gap.)

    // The verification chain survived every relabel/split/respread.
    let oracle = rank_oracle(&list);
    let chain_ranks: Vec<usize> = chain.iter().map(|h| oracle[&h.index()]).collect();
    for pair in chain_ranks.windows(2) {
        assert!(pair[0] < pair[1]);
    }
}

/// Writers insert at uniformly random positions of a shared (pre-built)
/// backbone while queriers compare random backbone pairs; the final order
/// must agree with the oracle and every query observed during the run is
/// checked against the *immutable* backbone order.
#[test]
fn random_position_inserts_with_concurrent_queries() {
    const WRITERS: usize = 3;
    const PER: usize = 4_000;

    let (list, base) = OmList::new();
    let list = Arc::new(list);
    let mut backbone = vec![base];
    let mut last = base;
    for _ in 0..256 {
        last = list.insert_after(last);
        backbone.push(last);
    }
    let backbone = Arc::new(backbone);

    let stop = Arc::new(AtomicBool::new(false));
    let querier = {
        let list = Arc::clone(&list);
        let stop = Arc::clone(&stop);
        let backbone = Arc::clone(&backbone);
        std::thread::spawn(move || {
            // Deterministic pseudo-random pair walk (no rand in dev-deps
            // of the integration target needed).
            let mut x = 0x9E3779B97F4A7C15u64;
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let i = (x as usize >> 8) % backbone.len();
                let j = (x as usize >> 24) % backbone.len();
                let expect = i.cmp(&j);
                assert_eq!(
                    list.order(backbone[i], backbone[j]),
                    expect,
                    "backbone order is immutable"
                );
            }
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let list = Arc::clone(&list);
            let backbone = Arc::clone(&backbone);
            std::thread::spawn(move || {
                let mut x = 0xD1B54A32D192ED03u64.wrapping_mul(w as u64 + 1) | 1;
                for _ in 0..PER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = (x as usize >> 8) % backbone.len();
                    // Insert after a random backbone element; the new item
                    // lands somewhere between backbone[i] and backbone[i+1].
                    list.insert_after(backbone[i]);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    querier.join().unwrap();

    let oracle = rank_oracle(&list);
    // Backbone stays in order, and random inserts landed inside the right
    // backbone gaps (checked implicitly: iter_order covers all items and
    // backbone ranks are strictly increasing).
    let ranks: Vec<usize> = backbone.iter().map(|h| oracle[&h.index()]).collect();
    for pair in ranks.windows(2) {
        assert!(pair[0] < pair[1]);
    }
    assert_eq!(oracle.len(), 1 + 256 + WRITERS * PER);
    assert_order_matches_oracle(&list, &backbone, &oracle);
}
