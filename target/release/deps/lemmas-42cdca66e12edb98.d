/root/repo/target/release/deps/lemmas-42cdca66e12edb98.d: tests/lemmas.rs Cargo.toml

/root/repo/target/release/deps/liblemmas-42cdca66e12edb98.rmeta: tests/lemmas.rs Cargo.toml

tests/lemmas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
