/root/repo/target/release/deps/sfrd_dag-b8a89968c40d4d86.d: crates/sfrd-dag/src/lib.rs crates/sfrd-dag/src/generator.rs crates/sfrd-dag/src/graph.rs crates/sfrd-dag/src/ids.rs crates/sfrd-dag/src/oracle.rs crates/sfrd-dag/src/paths.rs crates/sfrd-dag/src/recorder.rs crates/sfrd-dag/src/trace.rs

/root/repo/target/release/deps/sfrd_dag-b8a89968c40d4d86: crates/sfrd-dag/src/lib.rs crates/sfrd-dag/src/generator.rs crates/sfrd-dag/src/graph.rs crates/sfrd-dag/src/ids.rs crates/sfrd-dag/src/oracle.rs crates/sfrd-dag/src/paths.rs crates/sfrd-dag/src/recorder.rs crates/sfrd-dag/src/trace.rs

crates/sfrd-dag/src/lib.rs:
crates/sfrd-dag/src/generator.rs:
crates/sfrd-dag/src/graph.rs:
crates/sfrd-dag/src/ids.rs:
crates/sfrd-dag/src/oracle.rs:
crates/sfrd-dag/src/paths.rs:
crates/sfrd-dag/src/recorder.rs:
crates/sfrd-dag/src/trace.rs:
