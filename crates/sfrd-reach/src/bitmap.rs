//! Future-ID sets as bitmaps — the `cp`/`gp` representation of §4.
//!
//! Because future ids are dense (`FutureId::index` is a bit position), a
//! set of futures is an array of `u64` words. This is the concrete win the
//! paper reports over F-Order's per-node hash tables: membership is one
//! load, union is a word-wise OR, and sharing is an `Arc` clone.
//!
//! Sets are immutable once built; "mutation" builds a new set. The
//! [`merge`] helper implements the §3.4 discipline: a node with one parent
//! shares its parent's table (pointer copy); a node with two parents
//! allocates a union only when *each side contains something the other
//! lacks* — which Xu et al. show happens O(k) times in total.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sfrd_dag::FutureId;

/// An immutable set of future ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FutureSet {
    words: Box<[u64]>,
}

impl FutureSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Singleton set.
    pub fn singleton(f: FutureId) -> Self {
        let w = f.index() / 64;
        let mut words = vec![0u64; w + 1];
        words[w] |= 1 << (f.index() % 64);
        Self {
            words: words.into_boxed_slice(),
        }
    }

    /// Membership test. Missing words read as zero, so sets built when
    /// fewer futures existed keep working as `k` grows.
    #[inline]
    pub fn contains(&self, f: FutureId) -> bool {
        let w = f.index() / 64;
        self.words
            .get(w)
            .is_some_and(|&word| word >> (f.index() % 64) & 1 == 1)
    }

    /// A copy of `self` with `f` added.
    pub fn with(&self, f: FutureId) -> Self {
        let w = f.index() / 64;
        let mut words = self.words.to_vec();
        if words.len() <= w {
            words.resize(w + 1, 0);
        }
        words[w] |= 1 << (f.index() % 64);
        Self {
            words: words.into_boxed_slice(),
        }
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        let (long, short) = if self.words.len() >= other.words.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut words = long.words.to_vec();
        for (w, &s) in words.iter_mut().zip(short.words.iter()) {
            *w |= s;
        }
        Self {
            words: words.into_boxed_slice(),
        }
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        for (i, &w) in self.words.iter().enumerate() {
            let o = other.words.get(i).copied().unwrap_or(0);
            if w & !o != 0 {
                return false;
            }
        }
        true
    }

    /// Number of futures in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no future is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Heap bytes of this set's payload.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Iterate members (ascending).
    pub fn iter(&self) -> impl Iterator<Item = FutureId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| FutureId((wi * 64 + b) as u32))
        })
    }
}

/// Allocation/merge counters, reported in the Fig. 5 memory table.
#[derive(Debug, Default)]
pub struct SetStats {
    /// Cumulative bytes allocated for set payloads.
    pub bytes_allocated: AtomicU64,
    /// Number of sets allocated.
    pub allocations: AtomicU64,
    /// Number of true merges (both sides contributed members).
    pub merges: AtomicU64,
}

impl SetStats {
    /// Record one fresh allocation.
    pub fn note_alloc(&self, set: &FutureSet) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(
            (set.heap_bytes() + std::mem::size_of::<FutureSet>()) as u64,
            Ordering::Relaxed,
        );
    }

    /// Snapshot `(allocations, bytes, merges)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.allocations.load(Ordering::Relaxed),
            self.bytes_allocated.load(Ordering::Relaxed),
            self.merges.load(Ordering::Relaxed),
        )
    }
}

/// Merge two shared sets with the pointer-sharing discipline of §3.4:
/// reuse a side when it already covers the other, allocate a union only
/// when both sides contain something the other lacks.
pub fn merge(a: &Arc<FutureSet>, b: &Arc<FutureSet>, stats: &SetStats) -> Arc<FutureSet> {
    if Arc::ptr_eq(a, b) || b.is_subset(a) {
        return Arc::clone(a);
    }
    if a.is_subset(b) {
        return Arc::clone(b);
    }
    stats.merges.fetch_add(1, Ordering::Relaxed);
    let u = a.union(b);
    stats.note_alloc(&u);
    Arc::new(u)
}

/// `set ∪ {f}` with sharing when `f` is already present.
pub fn with_future(set: &Arc<FutureSet>, f: FutureId, stats: &SetStats) -> Arc<FutureSet> {
    if set.contains(f) {
        return Arc::clone(set);
    }
    let s = set.with(f);
    stats.note_alloc(&s);
    Arc::new(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FutureId {
        FutureId(i)
    }

    #[test]
    fn singleton_and_contains() {
        let s = FutureSet::singleton(f(70));
        assert!(s.contains(f(70)));
        assert!(!s.contains(f(69)));
        assert!(!s.contains(f(700))); // beyond allocated words
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn with_extends_words() {
        let s = FutureSet::empty().with(f(3)).with(f(200));
        assert!(s.contains(f(3)) && s.contains(f(200)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![f(3), f(200)]);
    }

    #[test]
    fn union_and_subset() {
        let a = FutureSet::singleton(f(1)).with(f(64));
        let b = FutureSet::singleton(f(2));
        let u = a.union(&b);
        assert!(a.is_subset(&u) && b.is_subset(&u));
        assert!(!u.is_subset(&a));
        assert_eq!(u.len(), 3);
        // Subset across different word lengths.
        assert!(FutureSet::singleton(f(0)).is_subset(&FutureSet::singleton(f(0)).with(f(500))));
        assert!(!FutureSet::singleton(f(500)).is_subset(&FutureSet::singleton(f(0))));
    }

    #[test]
    fn empty_is_subset_of_everything() {
        let e = FutureSet::empty();
        assert!(e.is_empty());
        assert!(e.is_subset(&FutureSet::singleton(f(9))));
        assert!(e.is_subset(&e));
    }

    #[test]
    fn merge_shares_pointers_when_possible() {
        let stats = SetStats::default();
        let a = Arc::new(FutureSet::singleton(f(1)).with(f(2)));
        let b = Arc::new(FutureSet::singleton(f(1)));
        let m = merge(&a, &b, &stats);
        assert!(Arc::ptr_eq(&m, &a));
        assert_eq!(stats.snapshot().2, 0, "no true merge expected");
        let c = Arc::new(FutureSet::singleton(f(9)));
        let m2 = merge(&a, &c, &stats);
        assert!(m2.contains(f(1)) && m2.contains(f(9)));
        assert_eq!(stats.snapshot().2, 1);
    }

    #[test]
    fn with_future_shares_when_present() {
        let stats = SetStats::default();
        let a = Arc::new(FutureSet::singleton(f(4)));
        let same = with_future(&a, f(4), &stats);
        assert!(Arc::ptr_eq(&a, &same));
        let grown = with_future(&a, f(5), &stats);
        assert!(grown.contains(f(5)));
        assert_eq!(stats.snapshot().0, 1);
    }
}
