/root/repo/target/release/deps/hooks_contract-b34cde3056ef2673.d: crates/sfrd-runtime/tests/hooks_contract.rs

/root/repo/target/release/deps/hooks_contract-b34cde3056ef2673: crates/sfrd-runtime/tests/hooks_contract.rs

crates/sfrd-runtime/tests/hooks_contract.rs:
