//! # sfrd-om — order maintenance for SF-Order
//!
//! An [order-maintenance](https://en.wikipedia.org/wiki/Order-maintenance_problem)
//! list: a total order supporting
//!
//! * [`OmList::insert_after`] / [`OmList::insert_n_after`] — insert one
//!   element (or a run of N) right after an existing one, amortized O(1),
//!   **group-local**: the common case takes only the target group's
//!   spinlock, so inserts into different groups proceed in parallel;
//! * [`OmList::order`] / [`OmList::precedes`] — compare two elements, O(1),
//!   **lock-free** (queries may race with inserts and relabels; a seqlock
//!   makes them linearizable).
//!
//! SF-Order (and its SP-dag ancestor WSP-Order) performs reachability
//! analysis by keeping every executed strand in two such total orders — the
//! *English* (left-to-right depth-first) and *Hebrew* (right-to-left
//! depth-first) orders — and declaring two strands logically parallel iff
//! the two orders disagree about them. See `sfrd-reach::sp_order`.
//!
//! WSP-Order obtains amortized O(1) concurrent operation via specialized
//! work-stealing-runtime support for parallel rebalancing; this crate gets
//! most of the way there with a two-level scheme: per-group spinlocks keep
//! the insert fast path decentralized, a global mutex serializes only the
//! geometrically-rare relabels/splits/respreads, and queries stay lock-free
//! throughout (DESIGN.md §5). [`OmList::stats`] exposes contention counters
//! ([`OmStats`]) so the decentralization is measurable end-to-end.
//!
//! ```
//! use sfrd_om::OmList;
//!
//! let (list, a) = OmList::new();
//! let c = list.insert_after(a);      // order: a, c
//! let b = list.insert_after(a);      // order: a, b, c
//! assert!(list.precedes(a, b));
//! assert!(list.precedes(b, c));
//! assert!(!list.precedes(c, a));
//! // Handles stay valid across arbitrary later insertions and relabels.
//! for _ in 0..10_000 {
//!     list.insert_after(a);
//! }
//! assert!(list.precedes(a, b) && list.precedes(b, c));
//! // The fast path dominates; the global lock is rarely touched.
//! let stats = list.stats();
//! assert!(stats.fast_inserts > stats.global_escalations);
//! ```

#![warn(missing_docs)]

mod arena;
mod depa;
mod list;
mod order;

pub use arena::AppendArena;
pub use depa::DepaList;
pub use list::{OmHandle, OmList, OmStats};
pub use order::OmOrder;

/// Which order-maintenance implementation backs the English/Hebrew total
/// orders: the two-level group-local [`OmList`] (shared structure, global
/// lock on the geometrically-rare escalations, seqlock queries) or the
/// DePa fork-local path-label [`DepaList`] (immutable labels computed at
/// fork time, no shared structure, escalation- and retry-free by
/// construction). [`OmOrder`] dispatches over the two at runtime.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OmBackend {
    /// The two-level group-local list in this crate (the default).
    #[default]
    OmList,
    /// The DePa fork-local path-label backend.
    DePa,
}

impl OmBackend {
    /// Short flag-style name.
    pub fn label(self) -> &'static str {
        match self {
            OmBackend::OmList => "om-list",
            OmBackend::DePa => "depa",
        }
    }

    /// Parse a flag value (`om-list`/`list` or `depa`); `None` for
    /// unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "om-list" | "list" => Some(OmBackend::OmList),
            "depa" => Some(OmBackend::DePa),
            _ => None,
        }
    }
}
