/root/repo/target/release/examples/smith_waterman-58113249a20e65c5.d: examples/smith_waterman.rs

/root/repo/target/release/examples/smith_waterman-58113249a20e65c5: examples/smith_waterman.rs

examples/smith_waterman.rs:
