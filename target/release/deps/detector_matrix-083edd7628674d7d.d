/root/repo/target/release/deps/detector_matrix-083edd7628674d7d.d: crates/sfrd-core/tests/detector_matrix.rs Cargo.toml

/root/repo/target/release/deps/libdetector_matrix-083edd7628674d7d.rmeta: crates/sfrd-core/tests/detector_matrix.rs Cargo.toml

crates/sfrd-core/tests/detector_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
