//! Micro-benchmarks of the order-maintenance substrate: the per-construct
//! cost floor of SF-Order's reachability maintenance (3 OM inserts per
//! fork across two lists) and the per-query cost floor (2 label
//! comparisons).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sfrd_om::OmList;
use std::hint::black_box;

fn bench_insert_append(c: &mut Criterion) {
    c.bench_function("om/insert_append_1k", |b| {
        b.iter_batched(
            OmList::new,
            |(list, base)| {
                let mut cur = base;
                for _ in 0..1000 {
                    cur = list.insert_after(cur);
                }
                black_box(cur);
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_insert_hotspot(c: &mut Criterion) {
    c.bench_function("om/insert_after_head_1k", |b| {
        b.iter_batched(
            OmList::new,
            |(list, base)| {
                for _ in 0..1000 {
                    black_box(list.insert_after(base));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_query(c: &mut Criterion) {
    let (list, base) = OmList::new();
    let mut handles = vec![base];
    let mut cur = base;
    for _ in 0..10_000 {
        cur = list.insert_after(cur);
        handles.push(cur);
    }
    c.bench_function("om/order_query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % handles.len();
            let j = (i * 31 + 1) % handles.len();
            black_box(list.precedes(handles[i], handles[j]))
        })
    });
}

criterion_group!(om, bench_insert_append, bench_insert_hotspot, bench_query);
criterion_main!(om);
