//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot`'s API it actually uses. The
//! semantic differences from the real crate that matter here:
//!
//! * `lock()` returns the guard directly (no `Result`); poisoning is
//!   swallowed, matching `parking_lot`'s panic-transparent behavior;
//! * `Condvar::wait_for` operates on a `&mut MutexGuard` and returns a
//!   [`WaitTimeoutResult`].

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end by timeout (rather than notification)?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block on the guard until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

/// A reader-writer lock (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            let _ = pair.1.wait_for(&mut g, Duration::from_millis(10));
        }
        t.join().unwrap();
        assert!(*g);
    }
}
