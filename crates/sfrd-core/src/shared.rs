//! Instrumented shared data.
//!
//! Rust has no compiler pass to auto-instrument loads and stores, so
//! programs under test route shared accesses through these wrappers, which
//! (a) perform the access and (b) report it to the detector via
//! [`Cx::record_read`]/[`Cx::record_write`] — exactly what the paper's
//! compiler instrumentation emits around each shared access.
//!
//! Storage uses [`AtomicCell`], so programs that *do* contain determinacy
//! races (the thing a race-detector test suite must execute!) are still
//! data-race-free at the Rust/LLVM level: the nondeterminism stays at the
//! value level, the UB stays away.

use crossbeam_utils::atomic::AtomicCell;
use sfrd_runtime::Cx;

/// A shared, instrumented 1-D array.
pub struct ShadowArray<T> {
    cells: Box<[AtomicCell<T>]>,
}

impl<T: Copy + Default> ShadowArray<T> {
    /// Array of `len` default values.
    pub fn new(len: usize) -> Self {
        Self::from_fn(len, |_| T::default())
    }
}

impl<T: Copy> ShadowArray<T> {
    /// Array initialized by index.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> T) -> Self {
        let mut f = f;
        Self {
            cells: (0..len).map(|i| AtomicCell::new(f(i))).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Shadow address of element `i` (its actual memory address).
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        &self.cells[i] as *const _ as u64
    }

    /// Instrumented read.
    #[inline]
    pub fn read<'s, C: Cx<'s>>(&self, ctx: &mut C, i: usize) -> T {
        let v = self.cells[i].load();
        ctx.record_read(self.addr(i));
        v
    }

    /// Instrumented write.
    #[inline]
    pub fn write<'s, C: Cx<'s>>(&self, ctx: &mut C, i: usize, v: T) {
        self.cells[i].store(v);
        ctx.record_write(self.addr(i));
    }

    /// Uninstrumented read (initialization / verification only).
    #[inline]
    pub fn load(&self, i: usize) -> T {
        self.cells[i].load()
    }

    /// Uninstrumented write (initialization / verification only).
    #[inline]
    pub fn store(&self, i: usize, v: T) {
        self.cells[i].store(v);
    }

    /// Copy out the contents (verification).
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.load(i)).collect()
    }
}

/// A shared, instrumented scalar.
///
/// The cell is boxed so its shadow address stays stable even if the
/// containing struct is moved after construction.
pub struct ShadowCell<T> {
    cell: Box<AtomicCell<T>>,
}

impl<T: Copy> ShadowCell<T> {
    /// New cell.
    pub fn new(v: T) -> Self {
        Self {
            cell: Box::new(AtomicCell::new(v)),
        }
    }

    /// Shadow address.
    #[inline]
    pub fn addr(&self) -> u64 {
        &*self.cell as *const _ as u64
    }

    /// Instrumented read.
    #[inline]
    pub fn read<'s, C: Cx<'s>>(&self, ctx: &mut C) -> T {
        let v = self.cell.load();
        ctx.record_read(self.addr());
        v
    }

    /// Instrumented write.
    #[inline]
    pub fn write<'s, C: Cx<'s>>(&self, ctx: &mut C, v: T) {
        self.cell.store(v);
        ctx.record_write(self.addr());
    }

    /// Uninstrumented read.
    pub fn load(&self) -> T {
        self.cell.load()
    }
}

/// A shared, instrumented row-major matrix.
pub struct ShadowMatrix<T> {
    data: ShadowArray<T>,
    cols: usize,
}

impl<T: Copy + Default> ShadowMatrix<T> {
    /// `rows × cols` matrix of defaults.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            data: ShadowArray::new(rows * cols),
            cols,
        }
    }
}

impl<T: Copy> ShadowMatrix<T> {
    /// Matrix initialized by `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        Self {
            data: ShadowArray::from_fn(rows * cols, |i| f(i / cols, i % cols)),
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len() / self.cols
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Instrumented read of `(r, c)`.
    #[inline]
    pub fn read<'s, C: Cx<'s>>(&self, ctx: &mut C, r: usize, c: usize) -> T {
        self.data.read(ctx, r * self.cols + c)
    }

    /// Instrumented write of `(r, c)`.
    #[inline]
    pub fn write<'s, C: Cx<'s>>(&self, ctx: &mut C, r: usize, c: usize, v: T) {
        self.data.write(ctx, r * self.cols + c, v)
    }

    /// Uninstrumented read.
    #[inline]
    pub fn load(&self, r: usize, c: usize) -> T {
        self.data.load(r * self.cols + c)
    }

    /// Uninstrumented write.
    #[inline]
    pub fn store(&self, r: usize, c: usize, v: T) {
        self.data.store(r * self.cols + c, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfrd_runtime::{run_sequential, NullHooks};

    #[test]
    fn array_roundtrip_and_addresses() {
        let a: ShadowArray<u64> = ShadowArray::from_fn(8, |i| i as u64);
        assert_eq!(a.len(), 8);
        assert_eq!(a.load(3), 3);
        assert_ne!(a.addr(0), a.addr(1));
        run_sequential(&NullHooks, |ctx| {
            a.write(ctx, 3, 99);
            assert_eq!(a.read(ctx, 3), 99);
        });
        assert_eq!(a.to_vec()[3], 99);
    }

    #[test]
    fn matrix_indexing() {
        let m: ShadowMatrix<i32> = ShadowMatrix::from_fn(3, 4, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.load(2, 3), 23);
        run_sequential(&NullHooks, |ctx| {
            m.write(ctx, 1, 2, -5);
            assert_eq!(m.read(ctx, 1, 2), -5);
        });
    }

    #[test]
    fn cell_roundtrip() {
        let c = ShadowCell::new(7u32);
        run_sequential(&NullHooks, |ctx| {
            assert_eq!(c.read(ctx), 7);
            c.write(ctx, 9);
        });
        assert_eq!(c.load(), 9);
    }
}
