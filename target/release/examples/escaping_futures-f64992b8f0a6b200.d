/root/repo/target/release/examples/escaping_futures-f64992b8f0a6b200.d: examples/escaping_futures.rs Cargo.toml

/root/repo/target/release/examples/libescaping_futures-f64992b8f0a6b200.rmeta: examples/escaping_futures.rs Cargo.toml

examples/escaping_futures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
