/root/repo/target/release/deps/workload_suite-dc591b3c557ced0d.d: tests/workload_suite.rs

/root/repo/target/release/deps/workload_suite-dc591b3c557ced0d: tests/workload_suite.rs

tests/workload_suite.rs:
