/root/repo/target/release/deps/sfrd_reach-b1feb49305046d96.d: crates/sfrd-reach/src/lib.rs crates/sfrd-reach/src/bitmap.rs crates/sfrd-reach/src/f_order.rs crates/sfrd-reach/src/hash.rs crates/sfrd-reach/src/multibags.rs crates/sfrd-reach/src/sf_order.rs crates/sfrd-reach/src/sp_order.rs

/root/repo/target/release/deps/libsfrd_reach-b1feb49305046d96.rmeta: crates/sfrd-reach/src/lib.rs crates/sfrd-reach/src/bitmap.rs crates/sfrd-reach/src/f_order.rs crates/sfrd-reach/src/hash.rs crates/sfrd-reach/src/multibags.rs crates/sfrd-reach/src/sf_order.rs crates/sfrd-reach/src/sp_order.rs

crates/sfrd-reach/src/lib.rs:
crates/sfrd-reach/src/bitmap.rs:
crates/sfrd-reach/src/f_order.rs:
crates/sfrd-reach/src/hash.rs:
crates/sfrd-reach/src/multibags.rs:
crates/sfrd-reach/src/sf_order.rs:
crates/sfrd-reach/src/sp_order.rs:
