/root/repo/target/release/deps/parallel_oracle-7c8f67ac6fd19ded.d: tests/parallel_oracle.rs

/root/repo/target/release/deps/parallel_oracle-7c8f67ac6fd19ded: tests/parallel_oracle.rs

tests/parallel_oracle.rs:
