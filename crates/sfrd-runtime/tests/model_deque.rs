//! Model-checked scheduler-queue invariants (`--cfg sfrd_model` only).
//!
//! Drives the Chase-Lev deque and the segment-queue injector through
//! thousands of seeded sequentially-consistent interleavings and asserts
//! the `WorkStealing.tla` invariant set:
//!
//! * **W1** (no lost tasks) + **W2** (no double execution): the multiset of
//!   items removed by the owner, the thieves, and the final drain is exactly
//!   the multiset pushed.
//! * **W3** (LIFO-local / FIFO-steal): the owner's pop sequence is strictly
//!   decreasing over a monotone push order; each thief's stolen sequence is
//!   strictly increasing (steals advance `top`, which only grows).
//! * **W6** (bounded stealing): every schedule terminates — a thief spinning
//!   on `Retry` forever would hang the round-robin truncation phase, which
//!   only ends when all threads finish.
//!
//! The lock-op census (`Report::lock_ops == 0`) certifies the hot path took
//! zero mutex acquisitions across *every* explored schedule; the final test
//! shows the census is live by observing a real `sync::Mutex` workload.
#![cfg(sfrd_model)]

use std::sync::Arc;

use sfrd_runtime::chase_lev::{Steal, Stealer, Worker};
use sfrd_runtime::injector::Injector;
use sfrd_runtime::model::{self, Config};
use sfrd_runtime::sync::Mutex;

/// Steal until `Empty`, collecting the values. `Empty` is a legitimate
/// early exit (the owner may not have pushed yet) — exactly-once is
/// checked against the union including the owner's drain.
fn run_thief(s: Stealer<usize>) -> Vec<usize> {
    let mut got = Vec::new();
    loop {
        match s.steal() {
            Steal::Success(v) => got.push(v),
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    got
}

fn assert_strictly_increasing(v: &[usize], who: &str) {
    for w in v.windows(2) {
        assert!(w[0] < w[1], "{who}: not strictly increasing: {v:?}");
    }
}

#[test]
fn deque_w1_w2_w3_two_thieves_census_zero() {
    const N: usize = 6;
    let cfg = Config {
        schedules: 1200,
        ..Config::default()
    };
    let report = model::explore(cfg, || {
        // cap 2 so the owner grows the buffer (2 -> 4 -> 8) while thieves
        // race it — the reclamation handshake is inside the explored space.
        let w: Worker<usize> = Worker::with_capacity(2);
        let s1 = w.stealer();
        let s2 = w.stealer();
        let h1 = model::spawn(move || run_thief(s1));
        let h2 = model::spawn(move || run_thief(s2));
        for i in 0..N {
            w.push(i);
        }
        let mut mine = Vec::new();
        while let Some(v) = w.pop() {
            mine.push(v);
        }
        let t1 = h1.join();
        let t2 = h2.join();

        // W3: LIFO for the owner (monotone pushes => decreasing pops) ...
        for pair in mine.windows(2) {
            assert!(pair[0] > pair[1], "owner pops not LIFO: {mine:?}");
        }
        // ... FIFO for each thief (top only advances).
        assert_strictly_increasing(&t1, "thief 1");
        assert_strictly_increasing(&t2, "thief 2");

        // W1 + W2: every pushed item removed exactly once.
        let mut all: Vec<usize> = mine;
        all.extend(t1);
        all.extend(t2);
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>(), "lost or duplicated task");
    });
    assert_eq!(report.schedules, cfg.schedules);
    assert!(
        report.schedules >= 1000,
        "acceptance floor: >=1000 schedules"
    );
    assert_eq!(
        report.lock_ops, 0,
        "Chase-Lev hot path must take zero mutex acquisitions"
    );
}

#[test]
fn injector_exactly_once_across_segment_boundary_census_zero() {
    // 34 items cross the 32-slot segment boundary: the boundary claimant's
    // tail_seg/head_seg swings and the retire handshake are exercised.
    const N: usize = 34;
    let cfg = Config {
        schedules: 1000,
        ..Config::default()
    };
    let report = model::explore(cfg, || {
        let inj: Arc<Injector<usize>> = Arc::new(Injector::new());
        let producer = {
            let inj = Arc::clone(&inj);
            model::spawn(move || {
                for i in 0..N {
                    inj.push(i);
                }
            })
        };
        let consume = |inj: Arc<Injector<usize>>| move || run_injector_thief(&inj);
        let c1 = model::spawn(consume(Arc::clone(&inj)));
        let c2 = model::spawn(consume(Arc::clone(&inj)));
        producer.join();
        let (g1, g2) = (c1.join(), c2.join());
        // Consumers may have bailed on Empty before the producer finished;
        // the main thread drains the remainder.
        let rest = run_injector_thief(&inj);

        // Per-consumer FIFO: a consumer's claimed tickets are increasing
        // and a single producer assigns tickets in push order.
        assert_strictly_increasing(&g1, "consumer 1");
        assert_strictly_increasing(&g2, "consumer 2");
        assert_strictly_increasing(&rest, "drain");

        let mut all = g1;
        all.extend(g2);
        all.extend(rest);
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>(), "lost or duplicated job");
    });
    assert_eq!(report.schedules, cfg.schedules);
    assert!(
        report.schedules >= 1000,
        "acceptance floor: >=1000 schedules"
    );
    assert_eq!(
        report.lock_ops, 0,
        "injector hot path must take zero mutex acquisitions"
    );
}

fn run_injector_thief(inj: &Injector<usize>) -> Vec<usize> {
    let mut got = Vec::new();
    loop {
        match inj.steal() {
            Steal::Success(v) => got.push(v),
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    got
}

/// The census is not vacuous: a workload that *does* lock reports it.
#[test]
fn census_observes_real_mutex_traffic() {
    let cfg = Config {
        schedules: 64,
        ..Config::default()
    };
    let report = model::explore(cfg, || {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let h = model::spawn(move || {
            *m2.lock() += 1;
        });
        *m.lock() += 1;
        h.join();
        assert_eq!(*m.lock(), 2);
    });
    assert!(
        report.lock_ops >= 3 * report.schedules as u64,
        "census missed lock operations: {report:?}"
    );
}
