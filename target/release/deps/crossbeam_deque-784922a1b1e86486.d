/root/repo/target/release/deps/crossbeam_deque-784922a1b1e86486.d: vendor/crossbeam-deque/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_deque-784922a1b1e86486.rmeta: vendor/crossbeam-deque/src/lib.rs

vendor/crossbeam-deque/src/lib.rs:
