//! The strand-event batch pipeline: per-strand access buffering.
//!
//! §4 of the paper measures that the dominant `full`-configuration cost is
//! the per-access synchronization on the shadow table — one lock
//! acquisition per instrumented read/write. The batch pipeline attacks
//! that volume from the runtime side: instead of handing every access to
//! the detector immediately, [`Batched`] accumulates a strand's accesses
//! in a per-strand [`AccessBatch`] and flushes them to the detector's
//! [`TaskHooks::on_access_batch`] hook in one call
//!
//! * at every **strand boundary** (`spawn`/`create`/`sync`/`get`/task
//!   end/task return) — the dag position is about to change, so pending
//!   accesses must be checked at the position they were issued from; and
//! * at a **size cap**, so an access-heavy strand cannot defer unbounded
//!   work.
//!
//! Soundness is the same argument as the older per-access
//! `sfrd-core::fastpath` filter, generalized: all accesses in a batch were
//! issued at one dag position (the filter and the flush points guarantee
//! it), so flushing them together is just executing the same accesses
//! under an adjacent legal schedule of the same dag — and determinacy
//! races are a property of the dag, not of the schedule.
//!
//! Within a batch the buffer **write-combines**: a repeat access to an
//! address already buffered (or already flushed at this position) with the
//! same or weaker kind is dropped — it could neither change the access
//! history nor produce a new race, exactly the fast-path invariant. A read
//! followed by a first write to the same address keeps both entries in
//! program order.
//!
//! The batch also carries the strand's [`VerdictCache`] — the
//! seqlock-style writer-epoch cache the detector's flush path uses to skip
//! redundant reachability queries (see `sfrd-shadow` docs). It lives here
//! because it is per-strand state with the same lifetime as the buffer.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hooks::TaskHooks;

/// One buffered shared-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchedAccess {
    /// Accessed address.
    pub addr: u64,
    /// Write (`true`) or read (`false`).
    pub is_write: bool,
}

/// Dedup-filter ways (direct-mapped, power of two). Same geometry as the
/// original fastpath filter.
const FILTER_WAYS: usize = 256;

/// Verdict-cache ways (direct-mapped, power of two).
const VERDICT_WAYS: usize = 256;

/// Default flush threshold for [`Batched`].
pub const DEFAULT_BATCH_CAP: usize = 512;

#[inline]
fn way(addr: u64, ways: usize) -> usize {
    // Mix, then mask: shadow addresses share high bits.
    (addr.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as usize & (ways - 1)
}

/// Per-strand cache of *serial* writer verdicts, validated by writer
/// epoch.
///
/// A slot `(addr, seq)` records: "at some earlier position of this strand,
/// the writer of `addr` whose epoch was `seq` was found to serially
/// precede the strand". A strand's successive positions are totally
/// ordered in the dag (program order), so by transitivity the same writer
/// still precedes every later position of this strand — as long as the
/// entry's writer (identified by its epoch counter) has not changed, the
/// reachability query can be skipped. The cache is deliberately never
/// cleared: invalidation is purely by epoch mismatch, like a seqlock
/// read-side validating against the writer sequence.
#[derive(Debug)]
pub struct VerdictCache {
    /// `(addr + 1, writer_seq)` per slot; key 0 = empty.
    slots: Box<[(u64, u64); VERDICT_WAYS]>,
    hits: u64,
}

impl VerdictCache {
    fn new() -> Self {
        Self {
            slots: Box::new([(0, 0); VERDICT_WAYS]),
            hits: 0,
        }
    }

    /// Is a serial verdict for `addr` under writer epoch `seq` cached?
    #[inline]
    pub fn check(&mut self, addr: u64, seq: u64) -> bool {
        let hit = self.slots[way(addr, VERDICT_WAYS)] == (addr.wrapping_add(1), seq);
        self.hits += hit as u64;
        hit
    }

    /// Record a serial verdict for `addr` under writer epoch `seq`.
    #[inline]
    pub fn store(&mut self, addr: u64, seq: u64) {
        self.slots[way(addr, VERDICT_WAYS)] = (addr.wrapping_add(1), seq);
    }

    /// Cache hits so far (reachability queries skipped).
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// A strand's access buffer plus its flush-path caches.
#[derive(Debug)]
pub struct AccessBatch {
    entries: Vec<BatchedAccess>,
    /// `(addr + 1, wrote)` per slot; key 0 = empty. Valid for the current
    /// dag position only — cleared at strand boundaries, *not* at size-cap
    /// flushes (the position is unchanged, so already-flushed accesses
    /// still cover repeats).
    filter: Box<[(u64, bool); FILTER_WAYS]>,
    verdicts: VerdictCache,
    recorded: u64,
    filtered: u64,
    /// Filtered accesses per kind since the last flush, so a batch-aware
    /// sink can keep program-characteristic counters (Fig. 3 reads/writes)
    /// exact even though filtered repeats never reach it as entries.
    pending_filtered: (u64, u64),
}

impl AccessBatch {
    /// Empty batch with capacity for `cap` entries.
    pub fn new(cap: usize) -> Self {
        Self {
            entries: Vec::with_capacity(cap),
            filter: Box::new([(0, false); FILTER_WAYS]),
            verdicts: VerdictCache::new(),
            recorded: 0,
            filtered: 0,
            pending_filtered: (0, 0),
        }
    }

    /// Buffer one access. Returns `false` when the access was
    /// write-combined away (a repeat at this position with the same or
    /// weaker kind).
    #[inline]
    pub fn record(&mut self, addr: u64, is_write: bool) -> bool {
        let key = addr.wrapping_add(1);
        let slot = &mut self.filter[way(addr, FILTER_WAYS)];
        if slot.0 == key && (slot.1 || !is_write) {
            self.filtered += 1;
            if is_write {
                self.pending_filtered.1 += 1;
            } else {
                self.pending_filtered.0 += 1;
            }
            return false;
        }
        *slot = (key, slot.1 || is_write);
        self.recorded += 1;
        self.entries.push(BatchedAccess { addr, is_write });
        true
    }

    /// `(reads, writes)` write-combined away since the last flush,
    /// consumed. Batch-aware sinks fold these into their access counters
    /// so filtering stays invisible in program-characteristic counts.
    pub fn take_filtered(&mut self) -> (u64, u64) {
        std::mem::take(&mut self.pending_filtered)
    }

    /// Any filtered accesses not yet consumed by [`take_filtered`](Self::take_filtered)?
    pub fn has_pending_filtered(&self) -> bool {
        self.pending_filtered != (0, 0)
    }

    /// Buffered entries awaiting flush.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Nothing buffered?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split borrow for the flush path: the pending entries and the
    /// strand's verdict cache. The callee must drain/clear the entries.
    pub fn parts(&mut self) -> (&mut Vec<BatchedAccess>, &mut VerdictCache) {
        (&mut self.entries, &mut self.verdicts)
    }

    /// Drain the buffer through `f` in program order — the default
    /// [`TaskHooks::on_access_batch`] replay. Filtered repeats are dropped
    /// entirely (the legacy fast-path semantics), so the pending filtered
    /// counts are discarded too.
    pub fn replay(&mut self, mut f: impl FnMut(u64, bool)) {
        self.pending_filtered = (0, 0);
        for a in self.entries.drain(..) {
            f(a.addr, a.is_write);
        }
    }

    /// Re-inject recorded entries verbatim, bypassing the write-combining
    /// filter — the journal-replay path. A recorded `Accesses` event holds
    /// exactly the entries the *recording* run's filter admitted at one
    /// dag position (plus the counts it combined away), so re-filtering
    /// them here would double-drop; they are appended untouched and the
    /// filtered counts restored for the sink's [`take_filtered`]
    /// (`Self::take_filtered`) accounting. The strand's [`VerdictCache`]
    /// is untouched and keeps working across re-injections, exactly as it
    /// persists across cap flushes live.
    pub fn reinject(&mut self, entries: &[BatchedAccess], (reads, writes): (u64, u64)) {
        self.recorded += entries.len() as u64;
        self.filtered += reads + writes;
        self.pending_filtered.0 += reads;
        self.pending_filtered.1 += writes;
        self.entries.extend_from_slice(entries);
    }

    /// Drop pending entries without processing (reach-only detectors).
    pub fn discard(&mut self) {
        self.pending_filtered = (0, 0);
        self.entries.clear();
    }

    /// Invalidate the position-scoped dedup filter (the verdict cache
    /// stays — it is epoch-validated, not position-scoped).
    pub fn clear_filter(&mut self) {
        self.filter.fill((0, false));
    }

    /// `(recorded, filtered, verdict-cache hits)` counters of this strand.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.recorded, self.filtered, self.verdicts.hits())
    }
}

/// Aggregate batch-pipeline counters of a [`Batched`] wrapper.
#[derive(Debug, Default)]
struct BatchCounters {
    flushes: AtomicU64,
    recorded: AtomicU64,
    filtered: AtomicU64,
    verdict_hits: AtomicU64,
}

/// Snapshot of a [`Batched`] wrapper's pipeline counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batch flushes (boundary + size-cap).
    pub flushes: u64,
    /// Accesses buffered (admitted past the filter).
    pub recorded: u64,
    /// Accesses write-combined away by the per-position filter.
    pub filtered: u64,
    /// Reachability queries skipped by the writer-epoch verdict cache.
    pub verdict_hits: u64,
}

impl BatchStats {
    /// Fraction of raw accesses absorbed by the dedup filter.
    pub fn filter_hit_rate(&self) -> f64 {
        let total = self.recorded + self.filtered;
        if total == 0 {
            0.0
        } else {
            self.filtered as f64 / total as f64
        }
    }
}

/// Wrap any detector so accesses flow through the batch pipeline.
///
/// `Batched<H>` buffers `on_read`/`on_write` into the strand's
/// [`AccessBatch`] and delivers them via `H`'s
/// [`TaskHooks::on_access_batch`] at strand boundaries and at the size
/// cap. Detectors that don't override the batch hook get the default
/// replay and behave exactly as if unwrapped (minus filtered repeats);
/// detectors that do (sfrd-core's unified event sink) process the whole
/// batch under one shadow-shard lock per touched shard.
pub struct Batched<H> {
    inner: H,
    cap: usize,
    counters: BatchCounters,
}

impl<H> Batched<H> {
    /// Wrap `inner` with the default flush threshold.
    pub fn new(inner: H) -> Self {
        Self::with_capacity(inner, DEFAULT_BATCH_CAP)
    }

    /// Wrap `inner`, flushing whenever a strand buffers `cap` accesses.
    pub fn with_capacity(inner: H, cap: usize) -> Self {
        Self {
            inner,
            cap: cap.max(1),
            counters: BatchCounters::default(),
        }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Unwrap the detector (after the run; pending per-strand buffers are
    /// gone with their strands by then).
    pub fn into_inner(self) -> H {
        self.inner
    }

    /// Aggregate pipeline counters (strands fold in at task end).
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            recorded: self.counters.recorded.load(Ordering::Relaxed),
            filtered: self.counters.filtered.load(Ordering::Relaxed),
            verdict_hits: self.counters.verdict_hits.load(Ordering::Relaxed),
        }
    }
}

/// Strand of a [`Batched`] detector: the inner strand plus its buffer.
pub struct BatchStrand<S> {
    inner: S,
    batch: AccessBatch,
}

impl<S> BatchStrand<S> {
    /// The wrapped detector's strand.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<H: TaskHooks> Batched<H> {
    #[inline]
    fn flush(&self, s: &mut BatchStrand<H::Strand>) {
        // Deliver when entries are pending, or when only filtered counts
        // are (a cap flush drained the entries but repeats kept arriving) —
        // the sink still needs those for its access counters.
        if !s.batch.is_empty() || s.batch.has_pending_filtered() {
            if !s.batch.is_empty() {
                self.counters.flushes.fetch_add(1, Ordering::Relaxed);
            }
            self.inner.on_access_batch(&mut s.inner, &mut s.batch);
            debug_assert!(
                s.batch.is_empty() && !s.batch.has_pending_filtered(),
                "on_access_batch must drain the batch"
            );
        }
    }

    /// Boundary flush: deliver pending accesses, then invalidate the
    /// position-scoped filter (the strand's dag position changes next).
    fn boundary(&self, s: &mut BatchStrand<H::Strand>) {
        self.flush(s);
        s.batch.clear_filter();
    }

    fn fresh_strand(&self, inner: H::Strand) -> BatchStrand<H::Strand> {
        BatchStrand {
            inner,
            batch: AccessBatch::new(self.cap),
        }
    }

    /// Fold a finished strand's counters into the aggregate.
    fn absorb_stats(&self, s: &BatchStrand<H::Strand>) {
        let (recorded, filtered, hits) = s.batch.stats();
        self.counters
            .recorded
            .fetch_add(recorded, Ordering::Relaxed);
        self.counters
            .filtered
            .fetch_add(filtered, Ordering::Relaxed);
        self.counters
            .verdict_hits
            .fetch_add(hits, Ordering::Relaxed);
    }
}

impl<H: TaskHooks> TaskHooks for Batched<H> {
    type Strand = BatchStrand<H::Strand>;

    fn root(&self) -> Self::Strand {
        self.fresh_strand(self.inner.root())
    }

    fn on_spawn(&self, p: &mut Self::Strand) -> Self::Strand {
        self.boundary(p);
        self.fresh_strand(self.inner.on_spawn(&mut p.inner))
    }

    fn on_create(&self, p: &mut Self::Strand) -> Self::Strand {
        self.boundary(p);
        self.fresh_strand(self.inner.on_create(&mut p.inner))
    }

    fn on_sync(&self, s: &mut Self::Strand, children: Vec<Self::Strand>) {
        self.boundary(s);
        self.inner.on_sync(
            &mut s.inner,
            children
                .into_iter()
                .map(|mut c| {
                    // Children flushed at their task end; drain defensively.
                    self.flush(&mut c);
                    c.inner
                })
                .collect(),
        );
    }

    fn on_get(&self, s: &mut Self::Strand, done: &Self::Strand) {
        self.boundary(s);
        debug_assert!(done.batch.is_empty(), "future strand ended unflushed");
        self.inner.on_get(&mut s.inner, &done.inner);
    }

    fn on_task_end(&self, s: &mut Self::Strand) {
        self.boundary(s);
        self.absorb_stats(s);
        self.inner.on_task_end(&mut s.inner);
    }

    fn on_task_return(&self, p: &mut Self::Strand, c: &mut Self::Strand) {
        self.boundary(p);
        self.flush(c);
        self.inner.on_task_return(&mut p.inner, &mut c.inner);
    }

    #[inline]
    fn on_read(&self, s: &mut Self::Strand, addr: u64) {
        if s.batch.record(addr, false) && s.batch.len() >= self.cap {
            self.flush(s);
        }
    }

    #[inline]
    fn on_write(&self, s: &mut Self::Strand, addr: u64) {
        if s.batch.record(addr, true) && s.batch.len() >= self.cap {
            self.flush(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[test]
    fn filter_write_combines() {
        let mut b = AccessBatch::new(16);
        assert!(b.record(8, false));
        assert!(!b.record(8, false), "repeat read combined");
        assert!(b.record(8, true), "first write kept after read");
        assert!(!b.record(8, true), "repeat write combined");
        assert!(!b.record(8, false), "read after write covered");
        assert_eq!(b.len(), 2);
        let mut seen = vec![];
        b.replay(|a, w| seen.push((a, w)));
        assert_eq!(seen, vec![(8, false), (8, true)], "program order kept");
        assert!(b.is_empty());
        let (recorded, filtered, _) = b.stats();
        assert_eq!((recorded, filtered), (2, 3));
    }

    #[test]
    fn clear_filter_readmits() {
        let mut b = AccessBatch::new(16);
        assert!(b.record(8, true));
        b.discard();
        assert!(!b.record(8, true), "filter survives a cap flush");
        b.clear_filter();
        assert!(b.record(8, true), "boundary invalidates the filter");
    }

    #[test]
    fn verdict_cache_epoch_validated() {
        let mut v = VerdictCache::new();
        assert!(!v.check(64, 1));
        v.store(64, 1);
        assert!(v.check(64, 1));
        assert!(!v.check(64, 2), "stale epoch misses");
        assert_eq!(v.hits(), 1);
    }

    /// Hooks that log every delivered event.
    struct Log(Mutex<Vec<String>>);
    impl TaskHooks for Log {
        type Strand = ();
        fn root(&self) {}
        fn on_spawn(&self, _: &mut ()) {
            self.0.lock().push("spawn".into());
        }
        fn on_create(&self, _: &mut ()) {
            self.0.lock().push("create".into());
        }
        fn on_sync(&self, _: &mut (), _: Vec<()>) {
            self.0.lock().push("sync".into());
        }
        fn on_get(&self, _: &mut (), _: &()) {
            self.0.lock().push("get".into());
        }
        fn on_task_end(&self, _: &mut ()) {
            self.0.lock().push("end".into());
        }
        fn on_read(&self, _: &mut (), addr: u64) {
            self.0.lock().push(format!("r{addr}"));
        }
        fn on_write(&self, _: &mut (), addr: u64) {
            self.0.lock().push(format!("w{addr}"));
        }
    }

    #[test]
    fn flushes_before_boundaries_in_program_order() {
        let b = Batched::with_capacity(Log(Mutex::new(Vec::new())), 64);
        let mut s = b.root();
        b.on_read(&mut s, 1);
        b.on_write(&mut s, 2);
        b.on_read(&mut s, 1); // combined
        let mut child = b.on_spawn(&mut s);
        b.on_write(&mut child, 3);
        b.on_task_end(&mut child);
        b.on_sync(&mut s, vec![child]);
        b.on_task_end(&mut s);
        let log = b.inner().0.lock().clone();
        assert_eq!(log, vec!["r1", "w2", "spawn", "w3", "end", "sync", "end"]);
        assert_eq!(b.stats().filtered, 1);
        assert!(b.stats().flushes >= 2);
    }

    #[test]
    fn size_cap_flushes_midstream() {
        let b = Batched::with_capacity(Log(Mutex::new(Vec::new())), 2);
        let mut s = b.root();
        for a in 0..5 {
            b.on_write(&mut s, a);
        }
        // cap=2: addresses 0..3 must already be delivered.
        assert!(b.inner().0.lock().len() >= 4);
        b.on_task_end(&mut s);
        assert_eq!(b.inner().0.lock().len(), 6, "5 writes + end");
    }
}
